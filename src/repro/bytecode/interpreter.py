"""The baseline bytecode interpreter — the profiling lower tier.

Executes full generic R semantics through :mod:`repro.runtime.coerce` and
records type/call/branch feedback at every relevant site.  Two properties
matter for the OSR machinery:

* :func:`run` can **enter at any pc with a pre-seeded operand stack**.  This
  is what deoptimization (OSR-out) uses to continue a function in the
  interpreter from the middle (paper Figure 1 / Listing 4).
* Backward branches are **counted**; hot loops trigger OSR-in through the
  VM (paper Listing 5), compiling a continuation from the current pc.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..runtime import coerce
from ..runtime.env import REnvironment
from ..runtime.rtypes import Kind, kind_lub
from ..runtime.values import (
    NULL,
    RBuiltin,
    RClosure,
    RError,
    RPromise,
    RVector,
    mk_lgl,
)
from . import opcodes as O
from .feedback import BinopFeedback, BranchFeedback, CallFeedback, ObservedType


def force(value: Any, vm) -> Any:
    """Force a promise (at most once); other values pass through."""
    if isinstance(value, RPromise):
        if not value.forced:
            value.value = run(value.code, value.env, vm)
            value.forced = True
            v = value.value
            if isinstance(v, RVector):
                v.named = 2
        return value.value
    return value


def bind_value(env: REnvironment, name: str, value: Any) -> None:
    """Store with NAMED bookkeeping (enables in-place subscript updates)."""
    if isinstance(value, RVector):
        if value.named == 0:
            value.named = 1
        elif env.bindings.get(name) is not value:
            value.named = 2
    env.set(name, value)


def match_arguments(closure: RClosure, args: List[Any], names, vm) -> REnvironment:
    """R-style argument matching: exact names first, then positional;
    missing formals fall back to defaults (evaluated lazily in the callee
    environment)."""
    env = REnvironment(parent=closure.env)
    formals = closure.formals
    formal_names = [f[0] for f in formals]
    bound = [False] * len(formals)
    used = [False] * len(args)

    if names is not None:
        for i, nm in enumerate(names):
            if nm is None:
                continue
            try:
                j = formal_names.index(nm)
            except ValueError:
                raise RError("unused argument (%s) in call to '%s'" % (nm, closure.name))
            if bound[j]:
                raise RError("formal argument '%s' matched by multiple arguments" % nm)
            _bind_arg(env, nm, args[i])
            bound[j] = True
            used[i] = True

    pos = 0
    for i, a in enumerate(args):
        if used[i]:
            continue
        while pos < len(formals) and bound[pos]:
            pos += 1
        if pos >= len(formals):
            raise RError("unused arguments in call to '%s'" % closure.name)
        _bind_arg(env, formal_names[pos], a)
        bound[pos] = True
        pos += 1

    for j, (nm, default) in enumerate(formals):
        if not bound[j]:
            if default is None:
                # R binds the "missing" marker; touching it errors at LD_VAR.
                continue
            env.set(nm, RPromise(default, env))
    return env


def _bind_arg(env: REnvironment, name: str, value: Any) -> None:
    if isinstance(value, RVector):
        value.named = 2  # argument values may be referenced by the caller too
    env.set(name, value)


def call_function(fn: Any, args: List[Any], names, vm) -> Any:
    """Common call path (also used by the native tier for generic calls)."""
    if isinstance(fn, RBuiltin):
        forced = [force(a, vm) for a in args]
        return fn.fn(forced, vm)
    if isinstance(fn, RClosure):
        return vm.call_closure(fn, args, names)
    raise RError("attempt to apply non-function")


def run(
    code,
    env: REnvironment,
    vm,
    stack: Optional[List[Any]] = None,
    pc: int = 0,
    closure=None,
) -> Any:
    """Interpret ``code`` in ``env`` starting at ``pc`` with operand ``stack``.

    The non-default ``pc``/``stack`` entry is how deoptimization resumes a
    function mid-flight after OSR-out.

    This is the production loop: feedback is recorded through the per-pc
    slot array preallocated by the compiler (a list index instead of a dict
    probe-and-insert), and ``state.interp_ops`` is maintained as straight-
    line *batches* — ops retire into a local accumulator that is settled at
    control-flow edges and flushed once on exit, so the totals the cost
    model reads are exactly those of the per-op reference loop.  Set
    ``RERPO_REF_EXEC=1`` (or ``Config.threaded_dispatch=False``) to run
    :func:`run_ref` instead for differential testing.
    """
    if not vm.config.threaded_dispatch:
        return run_ref(code, env, vm, stack, pc, closure)
    if stack is None:
        stack = []
    instrs = code.code
    consts = code.consts
    names = code.names
    fbslots = code.feedback_slots
    if fbslots is None:
        code.seal_feedback()
        fbslots = code.feedback_slots
    state = vm.state
    n = 0       # ops retired into the batch accumulator
    base = pc   # first pc of the current straight-line batch

    try:
        while True:
            ins = instrs[pc]
            op = ins[0]

            if op == O.PUSH_CONST:
                stack.append(consts[ins[1]])

            elif op == O.LD_VAR:
                v = env.get(names[ins[1]])
                if isinstance(v, RPromise):
                    v = force(v, vm)
                fbslots[pc].record(v)
                stack.append(v)

            elif op == O.ST_VAR:
                bind_value(env, names[ins[1]], stack.pop())

            elif op == O.ST_VAR_SUPER:
                v = stack.pop()
                if isinstance(v, RVector):
                    v.named = 2
                env.set_super(names[ins[1]], v)

            elif op == O.LD_FUN:
                stack.append(env.get_function(names[ins[1]]))

            elif op == O.POP:
                stack.pop()

            elif op == O.DUP:
                stack.append(stack[-1])

            elif op == O.ROT3:
                c = stack.pop()
                b = stack.pop()
                a = stack.pop()
                stack.append(b)
                stack.append(c)
                stack.append(a)

            elif op == O.BINOP:
                rhs = stack.pop()
                lhs = stack.pop()
                fbslots[pc].record(lhs, rhs)
                stack.append(coerce.arith(ins[1], lhs, rhs))

            elif op == O.COMPARE:
                rhs = stack.pop()
                lhs = stack.pop()
                fbslots[pc].record(lhs, rhs)
                stack.append(coerce.compare(ins[1], lhs, rhs))

            elif op == O.LOGIC:
                rhs = stack.pop()
                lhs = stack.pop()
                stack.append(coerce.logic(ins[1], lhs, rhs))

            elif op == O.UNOP:
                stack.append(coerce.unary(ins[1], stack.pop()))

            elif op == O.COLON:
                rhs = stack.pop()
                lhs = stack.pop()
                fbslots[pc].record(lhs, rhs)
                stack.append(coerce.colon(lhs, rhs))

            elif op == O.INDEX2:
                idx = stack.pop()
                obj = stack.pop()
                fbslots[pc].record(obj, idx)
                stack.append(coerce.extract2(obj, idx))

            elif op == O.INDEX1:
                idx = stack.pop()
                obj = stack.pop()
                fbslots[pc].record(obj, idx)
                stack.append(coerce.extract1(obj, idx))

            elif op == O.SET_INDEX2:
                val = stack.pop()
                idx = stack.pop()
                obj = stack.pop()
                fbslots[pc].record(obj, val)
                stack.append(_set_index2(obj, idx, val))

            elif op == O.SET_INDEX1:
                val = stack.pop()
                idx = stack.pop()
                obj = stack.pop()
                fbslots[pc].record(obj, val)
                stack.append(coerce.assign1(obj, idx, val))

            elif op == O.SEQ_LENGTH:
                v = stack.pop()
                fbslots[pc].record(v)
                if isinstance(v, RVector):
                    ln = len(v.data)
                elif v is NULL:
                    ln = 0
                else:
                    ln = 1
                stack.append(RVector(Kind.INT, [ln]))

            elif op == O.PUSH_NULL:
                stack.append(NULL)

            elif op == O.BR:
                target = ins[1]
                n += pc - base + 1
                base = pc + 1
                if target <= pc:
                    code.backedge_count += 1
                    if (
                        state.osr_in_enabled
                        and not code.osr_disabled
                        and code.backedge_count >= state.osr_threshold
                    ):
                        done, result = vm.try_osr_in(code, env, target, closure)
                        if done:
                            del stack[:]
                            return result
                pc = target
                base = target
                continue

            elif op == O.BRFALSE or op == O.BRTRUE:
                cond = stack.pop()
                truth = cond.is_true() if isinstance(cond, RVector) else _truthy(cond)
                fbslots[pc].record(truth)
                if (op == O.BRFALSE) != truth:
                    target = ins[1]
                    n += pc - base + 1
                    pc = target
                    base = target
                    continue

            elif op == O.CALL:
                nargs = ins[1]
                args = stack[len(stack) - nargs :] if nargs else []
                del stack[len(stack) - nargs :]
                fn = stack.pop()
                call_names = consts[ins[2]] if ins[2] >= 0 else None
                fbslots[pc].record(fn, args)
                stack.append(call_function(fn, args, call_names, vm))

            elif op == O.MK_CLOSURE:
                body, formals, fname = consts[ins[1]]
                stack.append(RClosure(formals, body, env, fname))

            elif op == O.MK_PROMISE:
                stack.append(RPromise(consts[ins[1]], env))

            elif op == O.CHECK_FUN:
                mode = ins[1]
                if mode == "callable":
                    if not isinstance(stack[-1], (RClosure, RBuiltin)):
                        raise RError("attempt to apply non-function")
                else:  # as_lgl_scalar for && / ||
                    v = stack.pop()
                    stack.append(mk_lgl(v.is_true() if isinstance(v, RVector) else _truthy(v)))

            elif op == O.RETURN:
                return stack.pop()

            else:  # pragma: no cover - unreachable with a correct compiler
                raise RError("unknown opcode %d" % op)

            pc += 1
    finally:
        # settle the open batch: everything from base through the current pc
        # (inclusive) executed sequentially, including a raising op
        state.interp_ops += n + (pc - base + 1)


def run_ref(
    code,
    env: REnvironment,
    vm,
    stack: Optional[List[Any]] = None,
    pc: int = 0,
    closure=None,
) -> Any:
    """Reference interpreter loop: per-op telemetry bumps and dict-probed
    feedback.  Kept as the differential-testing baseline for :func:`run`
    (selected with ``RERPO_REF_EXEC=1``); results, recorded feedback and
    final telemetry totals must be identical between the two.
    """
    if stack is None:
        stack = []
    instrs = code.code
    consts = code.consts
    names = code.names
    feedback = code.feedback
    state = vm.state

    while True:
        ins = instrs[pc]
        op = ins[0]
        state.interp_ops += 1

        if op == O.PUSH_CONST:
            stack.append(consts[ins[1]])

        elif op == O.LD_VAR:
            v = env.get(names[ins[1]])
            if isinstance(v, RPromise):
                v = force(v, vm)
            fb = feedback.get(pc)
            if fb is None:
                fb = feedback[pc] = ObservedType()
            fb.record(v)
            stack.append(v)

        elif op == O.ST_VAR:
            bind_value(env, names[ins[1]], stack.pop())

        elif op == O.ST_VAR_SUPER:
            v = stack.pop()
            if isinstance(v, RVector):
                v.named = 2
            env.set_super(names[ins[1]], v)

        elif op == O.LD_FUN:
            stack.append(env.get_function(names[ins[1]]))

        elif op == O.POP:
            stack.pop()

        elif op == O.DUP:
            stack.append(stack[-1])

        elif op == O.ROT3:
            c = stack.pop()
            b = stack.pop()
            a = stack.pop()
            stack.append(b)
            stack.append(c)
            stack.append(a)

        elif op == O.BINOP:
            rhs = stack.pop()
            lhs = stack.pop()
            fb = feedback.get(pc)
            if fb is None:
                fb = feedback[pc] = BinopFeedback()
            fb.record(lhs, rhs)
            stack.append(coerce.arith(ins[1], lhs, rhs))

        elif op == O.COMPARE:
            rhs = stack.pop()
            lhs = stack.pop()
            fb = feedback.get(pc)
            if fb is None:
                fb = feedback[pc] = BinopFeedback()
            fb.record(lhs, rhs)
            stack.append(coerce.compare(ins[1], lhs, rhs))

        elif op == O.LOGIC:
            rhs = stack.pop()
            lhs = stack.pop()
            stack.append(coerce.logic(ins[1], lhs, rhs))

        elif op == O.UNOP:
            stack.append(coerce.unary(ins[1], stack.pop()))

        elif op == O.COLON:
            rhs = stack.pop()
            lhs = stack.pop()
            fb = feedback.get(pc)
            if fb is None:
                fb = feedback[pc] = BinopFeedback()
            fb.record(lhs, rhs)
            stack.append(coerce.colon(lhs, rhs))

        elif op == O.INDEX2:
            idx = stack.pop()
            obj = stack.pop()
            fb = feedback.get(pc)
            if fb is None:
                fb = feedback[pc] = BinopFeedback()
            fb.record(obj, idx)
            stack.append(coerce.extract2(obj, idx))

        elif op == O.INDEX1:
            idx = stack.pop()
            obj = stack.pop()
            fb = feedback.get(pc)
            if fb is None:
                fb = feedback[pc] = BinopFeedback()
            fb.record(obj, idx)
            stack.append(coerce.extract1(obj, idx))

        elif op == O.SET_INDEX2:
            val = stack.pop()
            idx = stack.pop()
            obj = stack.pop()
            fb = feedback.get(pc)
            if fb is None:
                fb = feedback[pc] = BinopFeedback()
            fb.record(obj, val)
            stack.append(_set_index2(obj, idx, val))

        elif op == O.SET_INDEX1:
            val = stack.pop()
            idx = stack.pop()
            obj = stack.pop()
            fb = feedback.get(pc)
            if fb is None:
                fb = feedback[pc] = BinopFeedback()
            fb.record(obj, val)
            stack.append(coerce.assign1(obj, idx, val))

        elif op == O.SEQ_LENGTH:
            v = stack.pop()
            fb = feedback.get(pc)
            if fb is None:
                fb = feedback[pc] = ObservedType()
            fb.record(v)
            if isinstance(v, RVector):
                n = len(v.data)
            elif v is NULL:
                n = 0
            else:
                n = 1
            stack.append(RVector(Kind.INT, [n]))

        elif op == O.PUSH_NULL:
            stack.append(NULL)

        elif op == O.BR:
            target = ins[1]
            if target <= pc:
                code.backedge_count += 1
                if (
                    state.osr_in_enabled
                    and not code.osr_disabled
                    and code.backedge_count >= state.osr_threshold
                ):
                    done, result = vm.try_osr_in(code, env, target, closure)
                    if done:
                        del stack[:]
                        return result
            pc = target
            continue

        elif op == O.BRFALSE or op == O.BRTRUE:
            cond = stack.pop()
            truth = cond.is_true() if isinstance(cond, RVector) else _truthy(cond)
            fb = feedback.get(pc)
            if fb is None:
                fb = feedback[pc] = BranchFeedback()
            fb.record(truth)
            if (op == O.BRFALSE) != truth:
                pc = ins[1]
                continue

        elif op == O.CALL:
            nargs = ins[1]
            args = stack[len(stack) - nargs :] if nargs else []
            del stack[len(stack) - nargs :]
            fn = stack.pop()
            call_names = consts[ins[2]] if ins[2] >= 0 else None
            fb = feedback.get(pc)
            if fb is None:
                fb = feedback[pc] = CallFeedback()
            fb.record(fn, args)
            stack.append(call_function(fn, args, call_names, vm))

        elif op == O.MK_CLOSURE:
            body, formals, fname = consts[ins[1]]
            stack.append(RClosure(formals, body, env, fname))

        elif op == O.MK_PROMISE:
            stack.append(RPromise(consts[ins[1]], env))

        elif op == O.CHECK_FUN:
            mode = ins[1]
            if mode == "callable":
                if not isinstance(stack[-1], (RClosure, RBuiltin)):
                    raise RError("attempt to apply non-function")
            else:  # as_lgl_scalar for && / ||
                v = stack.pop()
                stack.append(mk_lgl(v.is_true() if isinstance(v, RVector) else _truthy(v)))

        elif op == O.RETURN:
            return stack.pop()

        else:  # pragma: no cover - unreachable with a correct compiler
            raise RError("unknown opcode %d" % op)

        pc += 1


def _truthy(value: Any) -> bool:
    if isinstance(value, RVector):
        return value.is_true()
    raise RError("argument is not interpretable as logical")


def _set_index2(obj: Any, idx: Any, val: Any) -> Any:
    """``x[[i]] <- v`` with GNU-R-style in-place fast path when unshared."""
    if (
        isinstance(obj, RVector)
        and obj.named <= 1
        and isinstance(val, RVector)
        and len(val.data) == 1
        and obj.kind != Kind.LIST
        and kind_lub(val.kind, obj.kind) == obj.kind
    ):
        iv = idx
        if isinstance(iv, RVector) and len(iv.data) == 1 and iv.kind in (Kind.INT, Kind.DBL):
            i = iv.data[0]
            if i is not None:
                i = int(i)
                if 1 <= i <= len(obj.data):
                    x = val.data[0]
                    if obj.kind == Kind.DBL and isinstance(x, (int, bool)) and x is not None:
                        x = float(x)
                    elif obj.kind == Kind.CPLX and isinstance(x, (int, float, bool)) and x is not None:
                        x = complex(x)
                    elif obj.kind == Kind.INT and isinstance(x, bool):
                        x = int(x)
                    obj.data[i - 1] = x
                    return obj
    return coerce.assign2(obj, idx, val)
