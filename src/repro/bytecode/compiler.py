"""AST → bytecode compiler.

Notable lowering decisions (all load-bearing for the OSR machinery):

* ``for`` loops are desugared into hidden-variable ``while`` form::

      for (v in seq) body
        ==>
      .fs <- seq; .fn <- length(.fs); .fi <- 0L
      while (.fi < .fn) { .fi <- .fi + 1L; v <- .fs[[.fi]]; body }

  so the operand stack is empty at every backedge, and the element access
  goes through the ordinary ``INDEX2`` profile point — exactly the site the
  paper's sum/colsum benchmarks speculate on.

* Call arguments that are provably effect-free (literals, variable reads,
  arithmetic/subscripts over such) are evaluated **eagerly** at the call
  site; anything that may have effects is wrapped in a promise
  (call-by-need).  This deviates from R only for programs that rely on
  laziness of effectful arguments, which none of our workloads do.

* Subscript assignment ``x[[i]] <- v`` compiles to a copy-on-write
  read-modify-write with an in-place fast path driven by a NAMED-style
  sharedness counter, like GNU R.  Nested targets desugar through
  temporaries.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..rlang import ast_nodes as A
from ..rlang.parser import parse
from ..runtime.rtypes import Kind
from ..runtime.values import NULL, RVector
from . import opcodes as O


class CompileError(Exception):
    pass


class CodeObject:
    """A compiled unit: a function body, a promise thunk, or a program.

    Carries everything both tiers need: the instruction list, const/name
    pools, lazily-allocated per-pc feedback slots, a pc→source-line map, and
    JIT bookkeeping (backedge counter for OSR-in, deopt counts).
    """

    __slots__ = (
        "code", "consts", "names", "feedback", "feedback_slots", "lines", "name",
        "backedge_count", "osr_disabled", "deopt_count", "deopt_sites",
        "stable_hash",
    )

    def __init__(self, name: str = "<code>"):
        self.code: List[tuple] = []
        self.consts: List[Any] = []
        self.names: List[str] = []
        self.feedback: Dict[int, Any] = {}
        #: per-pc feedback objects, preallocated by :meth:`seal_feedback`;
        #: the interpreter records through this list (indexed, not hashed)
        self.feedback_slots: Optional[List[Any]] = None
        self.lines: List[int] = []
        self.name = name
        self.backedge_count = 0
        self.osr_disabled = False
        self.deopt_count = 0
        #: per-site deopt counters; repeatedly failing sites stop being
        #: re-speculated by the compiler
        self.deopt_sites: Dict[int, int] = {}
        #: memoized content hash (jit/codecache.stable_code_hash)
        self.stable_hash: Optional[str] = None

    def seal_feedback(self) -> None:
        """Preallocate one feedback object per profiling site.

        The slot array and the ``feedback`` dict share the same objects, so
        all existing consumers (the IR builder's ``feedback.get(pc)``, the
        deoptless repair pass' ``.items()``) keep working unchanged; an
        unexecuted site holds an empty observation, which every consumer
        already treats exactly like an absent one (``count == 0`` /
        ``bias is None`` / no call targets).
        """
        from .feedback import slot_for_op

        slots: List[Any] = [None] * len(self.code)
        for pc, ins in enumerate(self.code):
            cls = slot_for_op(ins[0])
            if cls is None:
                continue
            fb = self.feedback.get(pc)
            if fb is None:
                fb = self.feedback[pc] = cls()
            slots[pc] = fb
        self.feedback_slots = slots

    def const_index(self, value: Any) -> int:
        for i, c in enumerate(self.consts):
            if c is value:
                return i
        self.consts.append(value)
        return len(self.consts) - 1

    def name_index(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            self.names.append(name)
            return len(self.names) - 1

    def __repr__(self) -> str:  # pragma: no cover
        return "<code %s: %d instrs>" % (self.name, len(self.code))


#: expression node types that can never observe or cause an effect.
_PURE_LEAVES = (A.NumLit, A.IntLit, A.ComplexLit, A.StrLit, A.BoolLit, A.NullLit, A.NaLit, A.Ident)

#: base functions assumed pure and unshadowed for the purpose of eager
#: argument evaluation.  GNU R's byte-compiler makes the same assumption for
#: base functions; a program that shadows one of these with an effectful
#: function and relies on argument laziness would observe the difference.
PURE_BASE_CALLEES = frozenset({
    "c", "length", "rep", "seq_len", "seq", "vector", "logical", "integer",
    "numeric", "double", "character", "complex", "list",
    "sum", "prod", "min", "max", "mean", "sqrt", "abs", "exp", "log",
    "sin", "cos", "tan", "atan", "atan2", "floor", "ceiling", "round",
    "trunc", "Re", "Im", "Mod", "nchar", "paste0", "identical",
    "is.logical", "is.integer", "is.double", "is.complex", "is.character",
    "is.list", "is.numeric", "is.function", "is.null", "is.na",
    "as.logical", "as.integer", "as.double", "as.numeric", "as.complex",
    "as.character", "as.list",
})


def is_effect_free(node: A.Node) -> bool:
    """Conservative effect analysis used to decide eager vs promise args."""
    if isinstance(node, _PURE_LEAVES):
        return True
    if isinstance(node, A.Function):
        return True  # closure creation itself is pure
    if isinstance(node, A.UnOp):
        return is_effect_free(node.operand)
    if isinstance(node, (A.BinOp, A.Colon)):
        return is_effect_free(node.lhs) and is_effect_free(node.rhs)
    if isinstance(node, A.Index):
        return is_effect_free(node.obj) and all(is_effect_free(a) for a in node.args)
    if isinstance(node, A.Call):
        return (
            isinstance(node.fn, A.Ident)
            and node.fn.name in PURE_BASE_CALLEES
            and all(is_effect_free(a) for a in node.args)
        )
    return False


class Compiler:
    """Compiles one compilation unit; nested functions recurse."""

    def __init__(self, name: str = "<code>"):
        self.co = CodeObject(name)
        #: per-unit hidden-name counter.  Deliberately NOT process-global:
        #: compiling the same source twice must yield byte-identical units
        #: (incl. the hidden ``.fs1``/``.fi3`` loop variables) so that the
        #: content-addressed code cache can share compiled code across
        #: re-evaluations (jit/codecache.py)
        self._gensym_counter = 0
        #: stack of (break_patch_list, next_target_pc, entry_depth)
        self.loops: List[Tuple[List[int], int, int]] = []
        #: statically tracked operand stack depth at the current emit point;
        #: lets break/next unwind partially built expressions correctly.
        self.depth = 0
        self.max_depth = 0

    # -- emission helpers ------------------------------------------------------

    def emit(self, op: int, *args: Any, line: int = 0) -> int:
        self.co.code.append((op,) + args)
        self.co.lines.append(line)
        if op == O.CALL:
            self.depth -= args[0]  # pops fn + nargs, pushes result
        else:
            self.depth += O.STACK_EFFECT.get(op, 0)
        if self.depth > self.max_depth:
            self.max_depth = self.depth
        return len(self.co.code) - 1

    def patch(self, at: int, *args: Any) -> None:
        op = self.co.code[at][0]
        self.co.code[at] = (op,) + args

    def here(self) -> int:
        return len(self.co.code)

    def gensym(self, prefix: str) -> str:
        self._gensym_counter += 1
        return ".%s%d" % (prefix, self._gensym_counter)

    # -- entry points -------------------------------------------------------------

    @staticmethod
    def compile_program(source: str, name: str = "<program>") -> CodeObject:
        ast = parse(source)
        c = Compiler(name)
        c.compile_block_value(ast)
        c.emit(O.RETURN, line=ast.line)
        c.co.seal_feedback()
        return c.co

    @staticmethod
    def compile_function(fn: A.Function, name: str) -> Tuple[CodeObject, list]:
        """Compile a function body; returns (code, formals) where formals is
        a list of (name, default CodeObject or None)."""
        c = Compiler(name)
        c.compile_expr(fn.body)
        c.emit(O.RETURN, line=fn.line)
        c.co.seal_feedback()
        formals = []
        for fname, default in fn.formals:
            if default is None:
                formals.append((fname, None))
            else:
                dc = Compiler("<default %s>" % fname)
                dc.compile_expr(default)
                dc.emit(O.RETURN, line=default.line)
                dc.co.seal_feedback()
                formals.append((fname, dc.co))
        return c.co, formals

    @staticmethod
    def compile_thunk(expr: A.Node, name: str = "<promise>") -> CodeObject:
        c = Compiler(name)
        c.compile_expr(expr)
        c.emit(O.RETURN, line=expr.line)
        c.co.seal_feedback()
        return c.co

    # -- statements / blocks ----------------------------------------------------------

    def compile_block_value(self, block: A.Block) -> None:
        if not block.body:
            self.emit(O.PUSH_NULL, line=block.line)
            return
        for stmt in block.body[:-1]:
            self.compile_expr(stmt)
            self.emit(O.POP, line=stmt.line)
        self.compile_expr(block.body[-1])

    # -- expressions ---------------------------------------------------------------------

    def compile_expr(self, node: A.Node) -> None:
        method = getattr(self, "_c_" + type(node).__name__, None)
        if method is None:
            raise CompileError("cannot compile %s" % type(node).__name__)
        method(node)

    # literals

    def _push_const_vector(self, kind: Kind, value: Any, line: int) -> None:
        vec = RVector(kind, [value])
        vec.named = 2  # shared: the const pool owns it
        self.emit(O.PUSH_CONST, self.co.const_index(vec), line=line)

    def _c_NumLit(self, n: A.NumLit) -> None:
        self._push_const_vector(Kind.DBL, n.value, n.line)

    def _c_IntLit(self, n: A.IntLit) -> None:
        self._push_const_vector(Kind.INT, n.value, n.line)

    def _c_ComplexLit(self, n: A.ComplexLit) -> None:
        self._push_const_vector(Kind.CPLX, n.value, n.line)

    def _c_StrLit(self, n: A.StrLit) -> None:
        self._push_const_vector(Kind.STR, n.value, n.line)

    def _c_BoolLit(self, n: A.BoolLit) -> None:
        self._push_const_vector(Kind.LGL, n.value, n.line)

    def _c_NaLit(self, n: A.NaLit) -> None:
        kind = {"lgl": Kind.LGL, "int": Kind.INT, "dbl": Kind.DBL, "str": Kind.STR}[n.kind]
        self._push_const_vector(kind, None, n.line)

    def _c_NullLit(self, n: A.NullLit) -> None:
        self.emit(O.PUSH_NULL, line=n.line)

    # variables

    def _c_Ident(self, n: A.Ident) -> None:
        self.emit(O.LD_VAR, self.co.name_index(n.name), line=n.line)

    # operators

    def _c_BinOp(self, n: A.BinOp) -> None:
        if n.op in ("&&", "||"):
            self._compile_shortcircuit(n)
            return
        self.compile_expr(n.lhs)
        self.compile_expr(n.rhs)
        if n.op in ("==", "!=", "<", "<=", ">", ">="):
            self.emit(O.COMPARE, n.op, line=n.line)
        elif n.op in ("&", "|"):
            self.emit(O.LOGIC, n.op, line=n.line)
        else:
            self.emit(O.BINOP, n.op, line=n.line)

    def _compile_shortcircuit(self, n: A.BinOp) -> None:
        # a && b  ==>  if (a) as.logical(b) else FALSE     (scalar semantics)
        self.compile_expr(n.lhs)
        if n.op == "&&":
            jump = self.emit(O.BRFALSE, -1, line=n.line)
            self.compile_expr(n.rhs)
            self.emit(O.CHECK_FUN, "as_lgl_scalar", line=n.line)  # normalize
            end = self.emit(O.BR, -1, line=n.line)
            self.patch(jump, self.here())
            self._push_const_vector(Kind.LGL, False, n.line)
            self.patch(end, self.here())
        else:
            jump = self.emit(O.BRTRUE, -1, line=n.line)
            self.compile_expr(n.rhs)
            self.emit(O.CHECK_FUN, "as_lgl_scalar", line=n.line)
            end = self.emit(O.BR, -1, line=n.line)
            self.patch(jump, self.here())
            self._push_const_vector(Kind.LGL, True, n.line)
            self.patch(end, self.here())

    def _c_UnOp(self, n: A.UnOp) -> None:
        self.compile_expr(n.operand)
        self.emit(O.UNOP, n.op, line=n.line)

    def _c_Colon(self, n: A.Colon) -> None:
        self.compile_expr(n.lhs)
        self.compile_expr(n.rhs)
        self.emit(O.COLON, line=n.line)

    # subscripts

    def _c_Index(self, n: A.Index) -> None:
        if len(n.args) != 1:
            raise CompileError("line %d: multi-dimensional subscripts are not supported" % n.line)
        self.compile_expr(n.obj)
        self.compile_expr(n.args[0])
        self.emit(O.INDEX2 if n.double else O.INDEX1, line=n.line)

    # assignment

    def _c_Assign(self, n: A.Assign) -> None:
        target = n.target
        if isinstance(target, A.Ident):
            # value ; DUP ; ST_VAR  — assignment is an expression in R
            if isinstance(n.value, A.Function):
                self._compile_closure(n.value, name=target.name)
            else:
                self.compile_expr(n.value)
            self.emit(O.DUP, line=n.line)
            op = O.ST_VAR_SUPER if n.superassign else O.ST_VAR
            self.emit(op, self.co.name_index(target.name), line=n.line)
            return
        if isinstance(target, A.Index):
            self._compile_index_assign(target, n.value, n.superassign, n.line)
            return
        raise CompileError("line %d: unsupported assignment target" % n.line)

    def _compile_index_assign(self, target: A.Index, value: A.Node, superassign: bool, line: int) -> None:
        if len(target.args) != 1:
            raise CompileError("line %d: multi-dimensional subscript assignment" % line)
        if isinstance(target.obj, A.Index):
            # nested: t[[i]][[j]] <- v  desugars through a temporary
            tmp = self.gensym("tmp")
            inner = target.obj
            #   tmp <- t[[i]]
            self.compile_expr(inner)
            self.emit(O.ST_VAR, self.co.name_index(tmp), line=line)
            #   tmp[[j]] <- v   (leaves value on stack; we pop it)
            self._compile_index_assign(
                A.Index(line=line, obj=A.Ident(line=line, name=tmp), args=target.args, double=target.double),
                value, False, line,
            )
            self.emit(O.POP, line=line)
            #   t[[i]] <- tmp   (leaves tmp on stack == assignment value; close enough:
            #   R's value of nested assignment is `value`; we re-push it below)
            self._compile_index_assign(
                A.Index(line=line, obj=inner.obj, args=inner.args, double=inner.double),
                A.Ident(line=line, name=tmp), superassign, line,
            )
            return
        if not isinstance(target.obj, A.Ident):
            raise CompileError("line %d: invalid subscript assignment target" % line)
        var = target.obj.name
        # stack: [v] [v] [obj] [idx] --ROT3--> [v] [obj] [idx] [v]
        self.compile_expr(value)
        self.emit(O.DUP, line=line)
        self.emit(O.LD_VAR, self.co.name_index(var), line=line)
        self.compile_expr(target.args[0])
        self.emit(O.ROT3, line=line)
        self.emit(O.SET_INDEX2 if target.double else O.SET_INDEX1, line=line)
        op = O.ST_VAR_SUPER if superassign else O.ST_VAR
        self.emit(op, self.co.name_index(var), line=line)

    # control flow

    def _c_If(self, n: A.If) -> None:
        self.compile_expr(n.cond)
        jump = self.emit(O.BRFALSE, -1, line=n.line)
        self.compile_expr(n.then)
        end = self.emit(O.BR, -1, line=n.line)
        self.patch(jump, self.here())
        if n.orelse is not None:
            self.compile_expr(n.orelse)
        else:
            self.emit(O.PUSH_NULL, line=n.line)
        self.patch(end, self.here())

    def _c_While(self, n: A.While) -> None:
        head = self.here()
        self.compile_expr(n.cond)
        exit_jump = self.emit(O.BRFALSE, -1, line=n.line)
        breaks: List[int] = []
        self.loops.append((breaks, head, self.depth))
        self.compile_expr(n.body)
        self.emit(O.POP, line=n.line)
        self.loops.pop()
        self.emit(O.BR, head, line=n.line)  # backedge
        end = self.here()
        self.patch(exit_jump, end)
        for b in breaks:
            self.patch(b, end)
        self.emit(O.PUSH_NULL, line=n.line)

    def _c_Repeat(self, n: A.Repeat) -> None:
        head = self.here()
        breaks: List[int] = []
        self.loops.append((breaks, head, self.depth))
        self.compile_expr(n.body)
        self.emit(O.POP, line=n.line)
        self.loops.pop()
        self.emit(O.BR, head, line=n.line)
        end = self.here()
        for b in breaks:
            self.patch(b, end)
        self.emit(O.PUSH_NULL, line=n.line)

    def _c_For(self, n: A.For) -> None:
        fs = self.gensym("fs")
        fn_ = self.gensym("fn")
        fi = self.gensym("fi")
        line = n.line
        # .fs <- seq
        self.compile_expr(n.seq)
        self.emit(O.ST_VAR, self.co.name_index(fs), line=line)
        # .fn <- length(.fs)
        self.emit(O.LD_VAR, self.co.name_index(fs), line=line)
        self.emit(O.SEQ_LENGTH, line=line)
        self.emit(O.ST_VAR, self.co.name_index(fn_), line=line)
        # .fi <- 0L
        self._push_const_vector(Kind.INT, 0, line)
        self.emit(O.ST_VAR, self.co.name_index(fi), line=line)
        # head: if (!(.fi < .fn)) goto end
        head = self.here()
        self.emit(O.LD_VAR, self.co.name_index(fi), line=line)
        self.emit(O.LD_VAR, self.co.name_index(fn_), line=line)
        self.emit(O.COMPARE, "<", line=line)
        exit_jump = self.emit(O.BRFALSE, -1, line=line)
        # .fi <- .fi + 1L
        self.emit(O.LD_VAR, self.co.name_index(fi), line=line)
        self._push_const_vector(Kind.INT, 1, line)
        self.emit(O.BINOP, "+", line=line)
        self.emit(O.ST_VAR, self.co.name_index(fi), line=line)
        # var <- .fs[[.fi]]
        self.emit(O.LD_VAR, self.co.name_index(fs), line=line)
        self.emit(O.LD_VAR, self.co.name_index(fi), line=line)
        self.emit(O.INDEX2, line=line)
        self.emit(O.ST_VAR, self.co.name_index(n.var), line=line)
        # body
        breaks: List[int] = []
        self.loops.append((breaks, head, self.depth))
        self.compile_expr(n.body)
        self.emit(O.POP, line=line)
        self.loops.pop()
        self.emit(O.BR, head, line=line)  # backedge
        end = self.here()
        self.patch(exit_jump, end)
        for b in breaks:
            self.patch(b, end)
        self.emit(O.PUSH_NULL, line=line)

    def _unwind_to(self, depth: int, line: int) -> None:
        """Emit POPs to unwind the operand stack to ``depth`` (for break/next
        escaping out of a partially evaluated expression)."""
        while self.depth > depth:
            self.emit(O.POP, line=line)

    def _c_Break(self, n: A.Break) -> None:
        if not self.loops:
            raise CompileError("line %d: break outside loop" % n.line)
        saved = self.depth
        self._unwind_to(self.loops[-1][2], n.line)
        jump = self.emit(O.BR, -1, line=n.line)
        self.loops[-1][0].append(jump)
        # dead code keeping the static depth consistent for the surrounding
        # expression (break "produces" a value that is never observed)
        self.depth = saved
        self.emit(O.PUSH_NULL, line=n.line)

    def _c_Next(self, n: A.Next) -> None:
        if not self.loops:
            raise CompileError("line %d: next outside loop" % n.line)
        saved = self.depth
        self._unwind_to(self.loops[-1][2], n.line)
        self.emit(O.BR, self.loops[-1][1], line=n.line)
        self.depth = saved
        self.emit(O.PUSH_NULL, line=n.line)

    def _c_Block(self, n: A.Block) -> None:
        self.compile_block_value(n)

    def _c_Return(self, n: A.Return) -> None:
        if n.value is not None:
            self.compile_expr(n.value)
        else:
            self.emit(O.PUSH_NULL, line=n.line)
        self.emit(O.RETURN, line=n.line)
        self.emit(O.PUSH_NULL, line=n.line)  # unreachable

    # functions and calls

    def _c_Function(self, n: A.Function) -> None:
        self._compile_closure(n)

    def _compile_closure(self, n: A.Function, name: str = "<anonymous>") -> None:
        code, formals = Compiler.compile_function(n, name)
        k = self.co.const_index((code, formals, name))
        self.emit(O.MK_CLOSURE, k, line=n.line)

    def _c_Call(self, n: A.Call) -> None:
        # callee
        if isinstance(n.fn, A.Ident):
            self.emit(O.LD_FUN, self.co.name_index(n.fn.name), line=n.line)
        else:
            self.compile_expr(n.fn)
            self.emit(O.CHECK_FUN, "callable", line=n.line)
        # arguments: eager when effect-free, promise otherwise
        for arg in n.args:
            if is_effect_free(arg):
                self.compile_expr(arg)
            else:
                thunk = Compiler.compile_thunk(arg)
                self.emit(O.MK_PROMISE, self.co.const_index(thunk), line=arg.line)
        names = tuple(n.arg_names)
        names_idx = self.co.const_index(names) if any(x is not None for x in names) else -1
        self.emit(O.CALL, len(n.args), names_idx, line=n.line)
