"""The baseline tier: stack bytecode, its compiler, and the profiling
interpreter."""

from .compiler import CodeObject, CompileError, Compiler
from .feedback import BinopFeedback, BranchFeedback, CallFeedback, ObservedType
from .interpreter import call_function, force, match_arguments, run

__all__ = [
    "BinopFeedback", "BranchFeedback", "CallFeedback", "CodeObject",
    "CompileError", "Compiler", "ObservedType", "call_function", "force",
    "match_arguments", "run",
]
