"""Bytecode opcode definitions.

The baseline tier is a classic stack machine, deliberately close in shape to
Ř's (and GNU R's) bytecode: an operand stack, an environment for variables,
and per-site profiling slots.  Instructions are ``(op, *args)`` tuples.

Design constraints that matter for OSR:

* **Loops are desugared** (``for`` becomes hidden-variable ``while`` form) so
  that the operand stack is *empty at every backedge*.  This keeps OSR-in
  simple and matches the paper's observation that the interpreter's operand
  stack must be passed into the continuation (here it is empty at entry).
* Every opcode's stack effect is static, so the abstract interpretation in
  the BC→IR builder can compute the operand stack shape at every pc — the
  basis for ``FrameState`` metadata and ``DeoptContext`` stack types.
"""

from __future__ import annotations

# -- opcode numbers -----------------------------------------------------------

PUSH_CONST = 0   # arg: const index
POP = 1
DUP = 2
ROT3 = 3         # (a, b, c) -> (b, c, a)   [c was top]
LD_VAR = 4       # arg: name index; forces promises; records type feedback
ST_VAR = 5       # arg: name index; pops value
ST_VAR_SUPER = 6 # arg: name index (<<-)
LD_FUN = 7       # arg: name index; function-skipping lookup
MK_CLOSURE = 8   # arg: const index of (code, formals) pair
MK_PROMISE = 9   # arg: const index of thunk code; pushes RPromise
CALL = 10        # args: (nargs, names const index); records call feedback
RETURN = 11
BR = 12          # arg: absolute target pc; negative-direction = backedge
BRFALSE = 13     # arg: absolute target pc; pops condition
BRTRUE = 14
BINOP = 15       # arg: operator string; records operand type feedback
UNOP = 16
COMPARE = 17
LOGIC = 18
COLON = 19       # a:b ; records operand feedback
INDEX2 = 20      # x[[i]] ; records object type feedback
SET_INDEX2 = 21  # pops (obj, idx, val) deepest-first, pushes new obj
INDEX1 = 22      # x[i]
SET_INDEX1 = 23
SEQ_LENGTH = 24  # pops vector, pushes its length as int scalar
PUSH_NULL = 25
CHECK_FUN = 26   # verify TOS is callable (used after LD_VAR of callee exprs)

#: printable names, index-aligned with the numbers above.
NAMES = [
    "PUSH_CONST", "POP", "DUP", "ROT3", "LD_VAR", "ST_VAR", "ST_VAR_SUPER",
    "LD_FUN", "MK_CLOSURE", "MK_PROMISE", "CALL", "RETURN", "BR", "BRFALSE",
    "BRTRUE", "BINOP", "UNOP", "COMPARE", "LOGIC", "COLON", "INDEX2",
    "SET_INDEX2", "INDEX1", "SET_INDEX1", "SEQ_LENGTH", "PUSH_NULL",
    "CHECK_FUN",
]

#: net stack effect per opcode, for the opcodes where it is constant.
#: CALL is special-cased (depends on nargs).
STACK_EFFECT = {
    PUSH_CONST: +1, POP: -1, DUP: +1, ROT3: 0, LD_VAR: +1, ST_VAR: -1,
    ST_VAR_SUPER: -1, LD_FUN: +1, MK_CLOSURE: +1, MK_PROMISE: +1,
    RETURN: -1, BR: 0, BRFALSE: -1, BRTRUE: -1, BINOP: -1, UNOP: 0,
    COMPARE: -1, LOGIC: -1, COLON: -1, INDEX2: -1, SET_INDEX2: -2,
    INDEX1: -1, SET_INDEX1: -2, SEQ_LENGTH: 0, PUSH_NULL: +1, CHECK_FUN: 0,
}


def disassemble(code) -> str:
    """Human-readable listing of a :class:`CodeObject` (debugging aid)."""
    lines = []
    for pc, ins in enumerate(code.code):
        op = ins[0]
        args = ins[1:]
        extra = ""
        if op in (LD_VAR, ST_VAR, ST_VAR_SUPER, LD_FUN):
            extra = " ; %s" % code.names[args[0]]
        elif op == PUSH_CONST:
            extra = " ; %r" % (code.consts[args[0]],)
        lines.append("%4d  %-12s %s%s" % (pc, NAMES[op], " ".join(map(str, args)), extra))
    return "\n".join(lines)
