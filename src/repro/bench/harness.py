"""Evaluation harness: phased runs, per-iteration records, and reports.

The paper's figures are all per-iteration time series over *phases* (a
phase = a workload configuration, e.g. "data is now a float vector").  The
harness runs a workload through its phases on a fresh VM per configuration
and records wall time, simulated cycles and VM event counters for every
iteration, so figure drivers can print the same series the paper plots.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..jit.config import Config
from ..jit.vm import RVM
from .workload import Workload


@dataclass
class Phase:
    """One phase of a phased benchmark: optional setup, then N iterations."""

    name: str
    setup: str = ""
    call: str = ""
    iterations: int = 5


@dataclass
class IterationRecord:
    phase: str
    iteration: int
    wall_s: float
    cycles: float
    deopts: int
    deoptless_dispatches: int
    deoptless_compiles: int
    compiles: int
    osr_ins: int
    result_repr: str = ""


@dataclass
class RunResult:
    label: str
    records: List[IterationRecord] = field(default_factory=list)
    vm: Optional[RVM] = None

    def phase_records(self, phase: str) -> List[IterationRecord]:
        return [r for r in self.records if r.phase == phase]

    def wall_series(self) -> List[float]:
        return [r.wall_s for r in self.records]

    def cycles_series(self) -> List[float]:
        return [r.cycles for r in self.records]

    def stable_time(self, phase: str, skip: int = 1) -> float:
        """Median wall time of a phase's iterations after ``skip`` warmup."""
        xs = sorted(r.wall_s for r in self.phase_records(phase)[skip:])
        if not xs:
            return float("nan")
        return xs[len(xs) // 2]

    def stable_cycles(self, phase: str, skip: int = 1) -> float:
        xs = sorted(r.cycles for r in self.phase_records(phase)[skip:])
        if not xs:
            return float("nan")
        return xs[len(xs) // 2]

    def total_deopts(self) -> int:
        return self.records[-1].deopts if self.records else 0


def run_phases(
    config: Config,
    source: str,
    phases: Sequence[Phase],
    label: str = "",
    global_setup: str = "",
) -> RunResult:
    """Run ``phases`` on a fresh VM; returns per-iteration records."""
    vm = RVM(config)
    vm.eval(source)
    if global_setup:
        vm.eval(global_setup)
    out = RunResult(label=label, vm=vm)
    for phase in phases:
        if phase.setup:
            vm.eval(phase.setup)
        for it in range(phase.iterations):
            c0 = vm.cycles()
            t0 = time.perf_counter()
            result = vm.eval(phase.call)
            wall = time.perf_counter() - t0
            out.records.append(IterationRecord(
                phase=phase.name,
                iteration=it,
                wall_s=wall,
                cycles=vm.cycles() - c0,
                deopts=vm.state.deopts,
                deoptless_dispatches=vm.state.deoptless_dispatches,
                deoptless_compiles=vm.state.deoptless_compiles,
                compiles=vm.state.compiles,
                osr_ins=vm.state.osr_ins,
                result_repr=repr(result)[:60],
            ))
    return out


def compare_phases(
    source: str,
    phases: Sequence[Phase],
    base_config: Optional[Config] = None,
    global_setup: str = "",
) -> Tuple[RunResult, RunResult]:
    """Run the same phases under normal deoptimization and under deoptless.

    Contextual dispatch is pinned off on both sides: the paper's figures
    compare a *single* optimized version recovering at the exit boundary
    (deopt vs deoptless continuation).  Entry-specialized versions would
    absorb the phase change at the call boundary instead and flatten both
    series (that layer is measured by benchmarks/test_context_dispatch.py).
    """
    base = base_config or Config()
    normal_cfg = _clone_config(base, enable_deoptless=False, ctxdispatch=False)
    deoptless_cfg = _clone_config(base, enable_deoptless=True, ctxdispatch=False)
    normal = run_phases(normal_cfg, source, phases, "normal", global_setup)
    deoptless = run_phases(deoptless_cfg, source, phases, "deoptless", global_setup)
    return normal, deoptless


def _clone_config(base: Config, **overrides) -> Config:
    import dataclasses

    return dataclasses.replace(base, **overrides)


# ---------------------------------------------------------------------------
# simple report formatting
# ---------------------------------------------------------------------------

def geomean(xs: Sequence[float]) -> float:
    xs = [x for x in xs if x > 0 and not math.isnan(x)]
    if not xs:
        return float("nan")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def format_series_table(results: Sequence[RunResult], metric: str = "wall_s") -> str:
    """Aligned per-iteration table across configurations."""
    lines = []
    header = "%-10s %-4s" % ("phase", "it")
    for r in results:
        header += " %14s" % r.label
    lines.append(header)
    n = max(len(r.records) for r in results)
    for i in range(n):
        rec0 = results[0].records[i] if i < len(results[0].records) else None
        row = "%-10s %-4s" % (rec0.phase if rec0 else "?", rec0.iteration if rec0 else "?")
        for r in results:
            if i < len(r.records):
                v = getattr(r.records[i], metric)
                row += " %14.6g" % v
            else:
                row += " %14s" % "-"
        lines.append(row)
    return "\n".join(lines)


#: repository root (…/src/repro/bench/harness.py -> four levels up); bench
#: artifact placement must not depend on the pytest invocation's CWD
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))


def save_json(name: str, payload: Dict[str, Any], path: Optional[str] = None) -> str:
    """Persist a benchmark's results as JSON for CI and report tooling.

    Placement policy (benchmarks/check_artifacts.py enforces it in CI):

    * ``BENCH_*`` names are the tracked acceptance artifacts — they go to
      the **repository root** (``BENCH_compile.json`` next to
      ``BENCH_inline.json``/``BENCH_vectorize.json``);
    * everything else goes to ``benchmarks/results/``;
    * ``$REPRO_BENCH_JSON_DIR`` overrides the directory, ``path`` overrides
      everything.

    Both defaults are anchored at the repo root, not the process CWD.
    Returns the path written.
    """
    if path is None:
        out_dir = os.environ.get("REPRO_BENCH_JSON_DIR")
        if out_dir is None:
            if name.startswith("BENCH_"):
                out_dir = _REPO_ROOT
            else:
                out_dir = os.path.join(_REPO_ROOT, "benchmarks", "results")
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "%s.json" % name)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_speedup_table(rows: Sequence[Tuple[str, float, str]]) -> str:
    """Rows of (name, speedup, note)."""
    lines = ["%-24s %10s  %s" % ("benchmark", "speedup", "notes")]
    for name, speedup, note in rows:
        lines.append("%-24s %9.2fx  %s" % (name, speedup, note))
    return "\n".join(lines)
