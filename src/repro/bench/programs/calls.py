"""Call-heavy microbenchmarks — small closures invoked from hot loops.

These are the speculative-inlining workloads: every call site is
monomorphic (except ``call_poly``), the callees are tiny and loop-free, and
the loop bodies do nothing *but* call, so the guarded-call overhead
(argument boxing, environment allocation, the call/return protocol)
dominates.  ``call_poly`` drives one genuinely megamorphic site through a
dispatcher closure — it is not inlinable by design and exercises the
polymorphic inline cache instead.
"""

from __future__ import annotations

from ..workload import REGISTRY, Workload

REGISTRY.add(Workload(
    name="call_scalar",
    source="""
madd <- function(a, b) a + b
call_scalar_run <- function(n, x) {
  s <- 0
  i <- 0
  while (i < n) {
    s <- madd(s, x)
    i <- i + 1
  }
  s
}
""",
    setup="invisible(NULL)",
    call="call_scalar_run({n}, 1)",
    n=60000,
    n_test=6000,
    notes="one monomorphic scalar call per iteration",
))

REGISTRY.add(Workload(
    name="call_chain",
    source="""
cc_inc <- function(x) x + 1
cc_dbl <- function(x) x * 2
cc_mix <- function(a, b) a - b
call_chain_run <- function(n) {
  s <- 0
  i <- 0
  while (i < n) {
    a <- cc_inc(s)
    b <- cc_dbl(i)
    s <- cc_mix(a, b) + s - s + i
    i <- i + 1
  }
  s
}
""",
    setup="invisible(NULL)",
    call="call_chain_run({n})",
    n=40000,
    n_test=4000,
    notes="three distinct monomorphic callees per iteration",
))

REGISTRY.add(Workload(
    name="call_nested",
    source="""
cn_inc <- function(x) x + 1
cn_twice <- function(x) {
  a <- cn_inc(x)
  cn_inc(a)
}
call_nested_run <- function(n) {
  s <- 0
  i <- 0
  while (i < n) {
    s <- s + cn_twice(i)
    i <- i + 1
  }
  s
}
""",
    setup="invisible(NULL)",
    call="call_nested_run({n})",
    n=50000,
    n_test=5000,
    notes="depth-2 inlining: cn_twice and both cn_inc calls splice",
))

REGISTRY.add(Workload(
    name="call_default",
    source="""
cd_step <- function(x, d = 2) x + d
call_default_run <- function(n) {
  s <- 0
  i <- 0
  while (i < n) {
    s <- cd_step(s)
    i <- i + 1
  }
  s
}
""",
    setup="invisible(NULL)",
    call="call_default_run({n})",
    n=60000,
    n_test=6000,
    notes="constant default argument substituted at the inline site",
))

REGISTRY.add(Workload(
    name="call_poly",
    source="""
cp_a1 <- function(x) x + 1
cp_a2 <- function(x) x + 2
cp_a3 <- function(x) x + 3
cp_a4 <- function(x) x * 2
cp_apply <- function(g, x) g(x)
call_poly_run <- function(n) {
  s <- 0
  i <- 0
  while (i < n) {
    s <- cp_apply(cp_a1, s)
    s <- cp_apply(cp_a2, s) - s + i
    s <- cp_apply(cp_a3, s) - s
    s <- cp_apply(cp_a4, s) - s
    i <- i + 1
  }
  s
}
""",
    setup="invisible(NULL)",
    call="call_poly_run({n})",
    n=12000,
    n_test=1500,
    notes="megamorphic site inside cp_apply: PIC path, not inlinable",
))
