"""The paper's own example programs.

* ``sum_phases`` — Listing 1: a naive vector sum run over phases whose
  element type changes integer → double → complex → double (Figure 4).
* ``colsum`` — Listing 8: column-wise sum of a table with alternating
  double and integer columns (Figure 10).
"""

from __future__ import annotations

from ..workload import REGISTRY, Workload

#: Listing 1 — the running example of the paper (`data` and `length` are
#: globals, exactly as printed there).
SUM_SOURCE = """
sum <- function() {
  total <- 0
  for (i in 1:length) total <- total + data[[i]]
  total
}
"""

REGISTRY.add(Workload(
    name="sum_phases",
    source=SUM_SOURCE,
    setup="""
length <- {n}L
data <- integer({n}L)
for (i in 1:{n}L) data[[i]] <- i
""",
    call="sum()",
    n=4000,
    n_test=200,
    notes="phases switch the type of `data`; see bench.figures.fig4",
))

#: the setup statements the figure-4 harness uses to switch phases
SUM_PHASE_SETUPS = {
    "int": "data <- integer({n}L)\nfor (i in 1:{n}L) data[[i]] <- i",
    "float": "data <- numeric({n}L)\nfor (i in 1:{n}L) data[[i]] <- i * 1.5",
    "complex": "data <- complex({n}L)\nfor (i in 1:{n}L) data[[i]] <- complex(i * 1.0, 1.0)",
}


#: Listing 8 — column-wise sum over a "table" (a list of column vectors).
COLSUM_SOURCE = """
f <- function(colIndex, t) {
  dataCol <- t[[colIndex]]
  res <- 0
  for (i in 1:length(dataCol)) res <- res + dataCol[[i]]
  res
}

columnwiseSum <- function(t) {
  res <- c()
  for (i in 1L:cols) res[[i]] <- f(i, t)
  res
}
"""

REGISTRY.add(Workload(
    name="colsum",
    source=COLSUM_SOURCE,
    setup="""
cols <- 50L
rows <- {n}L
tbl <- list()
for (ci in 1L:cols) {{
  if (ci %% 2L == 0L) {{
    col <- numeric(rows)
    for (ri in 1:rows) col[[ri]] <- ri * 0.5
  }} else {{
    col <- integer(rows)
    for (ri in 1:rows) col[[ri]] <- ri
  }}
  tbl[[ci]] <- col
}}
""",
    call="columnwiseSum(tbl)",
    n=2000,
    n_test=50,
    notes="paper: 50 columns x 10M rows; scaled to rows={n} (shape preserved)",
))
