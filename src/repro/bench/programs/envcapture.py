"""Closure-heavy microbenchmarks — functions whose local frame is captured.

These are the environment-escape-analysis workloads (``opt/escape.py``).
Each hot function creates a closure or a lazy argument, which under the
classic all-or-nothing heuristic forces *every* local through a
materialized ``REnvironment``: the loop counter, the bound, and the
accumulator all pay boxed environment loads and stores per iteration.
Escape analysis partitions the frame instead — only the genuinely captured
names live in a partial ``MkEnv`` environment, the loop state stays in
unboxed SSA registers, and provably forced-once effect-free arguments skip
promise allocation entirely.

* ``envcap_counter`` — a counter/accumulator closure: the loop body bumps
  a captured total through ``<<-`` while the induction state is private.
* ``envcap_memo`` — a memoizing closure: two captured cache slots are read
  and written through the environment, the summation loop is private.
* ``envcap_lazy`` — a lazy-argument chain: the argument expression calls a
  user closure, so the compiler cannot evaluate it eagerly and emits a
  promise; the escape analysis proves the consuming call forces it exactly
  once with no intervening effects and elides the allocation.

The helper closures of ``envcap_lazy`` live at global scope deliberately:
per-activation closures have unstable identities, which would make the
thunk's call feedback polymorphic and (correctly) block the elision proof.
"""

from __future__ import annotations

from ..workload import REGISTRY, Workload

REGISTRY.add(Workload(
    name="envcap_counter",
    source="""
counter_run <- function(n) {
  total <- 0
  bump <- function(k) total <<- total + k
  i <- 0
  while (i < n) {
    bump(1)
    i <- i + 1
  }
  total
}
""",
    setup="invisible(NULL)",
    call="counter_run({n})",
    n=30000,
    n_test=3000,
    notes="captured accumulator via <<-; induction state stays scalar",
))

REGISTRY.add(Workload(
    name="envcap_memo",
    source="""
memo_run <- function(n) {
  last <- -1
  lastv <- 0
  sq <- function(x) {
    if (x == last) lastv
    else {
      last <<- x
      lastv <<- x * x
      lastv
    }
  }
  s <- 0
  i <- 0
  while (i < n) {
    s <- s + sq(i %% 8)
    i <- i + 1
  }
  s
}
""",
    setup="invisible(NULL)",
    call="memo_run({n})",
    n=25000,
    n_test=2500,
    notes="memoizing closure over two captured cache slots",
))

REGISTRY.add(Workload(
    name="envcap_lazy",
    source="""
lz_add1 <- function(x) x + 1
lz_use <- function(v) v * 2
lazysum_run <- function(n) {
  s <- 0
  i <- 0
  while (i < n) {
    s <- s + lz_use(lz_add1(i))
    i <- i + 1
  }
  s
}
""",
    setup="invisible(NULL)",
    call="lazysum_run({n})",
    n=30000,
    n_test=3000,
    notes="lazy-argument chain; the promise allocation is provably elidable",
))
