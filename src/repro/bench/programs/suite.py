"""The main benchmark suite — mini-R ports of the Ř benchmark suite
programs used in the paper's section 5.1 mis-speculation experiment
(themselves derived from the are-we-fast-yet / CLBG suites).

Every program is a plain mini-R function workload: loop-heavy, numeric, and
full of speculation opportunities (element types, scalar unboxing, call
targets), so the chaos mode's random assumption failures have guards to
trip.  Sizes are tuned so one iteration of each takes on the order of tens
of milliseconds in the baseline interpreter.
"""

from __future__ import annotations

from ..workload import REGISTRY, Workload

# ---------------------------------------------------------------------------
# bounce — balls bouncing in a box (are-we-fast-yet)
# ---------------------------------------------------------------------------

REGISTRY.add(Workload(
    name="bounce",
    source="""
bounce_run <- function(n, iters) {
  x <- numeric(n); y <- numeric(n)
  vx <- numeric(n); vy <- numeric(n)
  seedv <- 74755
  for (i in 1:n) {
    seedv <- (seedv * 1309 + 13849) %% 65536
    x[[i]] <- seedv %% 500
    seedv <- (seedv * 1309 + 13849) %% 65536
    y[[i]] <- seedv %% 500
    seedv <- (seedv * 1309 + 13849) %% 65536
    vx[[i]] <- seedv %% 300 / 10 - 15
    seedv <- (seedv * 1309 + 13849) %% 65536
    vy[[i]] <- seedv %% 300 / 10 - 15
  }
  bounces <- 0
  for (it in 1:iters) {
    for (i in 1:n) {
      nx <- x[[i]] + vx[[i]]
      ny <- y[[i]] + vy[[i]]
      if (nx > 500) { nx <- 500; vx[[i]] <- 0 - abs(vx[[i]]); bounces <- bounces + 1 }
      if (nx < 0)   { nx <- 0;   vx[[i]] <- abs(vx[[i]]);     bounces <- bounces + 1 }
      if (ny > 500) { ny <- 500; vy[[i]] <- 0 - abs(vy[[i]]); bounces <- bounces + 1 }
      if (ny < 0)   { ny <- 0;   vy[[i]] <- abs(vy[[i]]);     bounces <- bounces + 1 }
      x[[i]] <- nx
      y[[i]] <- ny
    }
  }
  bounces
}
""",
    setup="invisible(NULL)",
    call="bounce_run({n}L, 12L)",
    n=60,
    n_test=8,
))

# ---------------------------------------------------------------------------
# mandelbrot — complex arithmetic (CLBG)
# ---------------------------------------------------------------------------

REGISTRY.add(Workload(
    name="mandelbrot",
    source="""
mandel <- function(size) {
  total <- 0L
  fsize <- size * 1.0
  for (yi in 1:size) {
    ci <- 2.0 * yi / fsize - 1.0
    for (xi in 1:size) {
      cr <- 2.0 * xi / fsize - 1.5
      zr <- 0.0; zi <- 0.0
      k <- 0L
      inside <- TRUE
      while (k < 50L) {
        k <- k + 1L
        zr2 <- zr * zr
        zi2 <- zi * zi
        if (zr2 + zi2 > 4.0) { inside <- FALSE; k <- 50L }
        else {
          nzr <- zr2 - zi2 + cr
          zi <- 2.0 * zr * zi + ci
          zr <- nzr
        }
      }
      if (inside) total <- total + 1L
    }
  }
  total
}
""",
    setup="invisible(NULL)",
    call="mandel({n}L)",
    n=40,
    n_test=12,
))

# ---------------------------------------------------------------------------
# nbody — planetary dynamics (CLBG)
# ---------------------------------------------------------------------------

REGISTRY.add(Workload(
    name="nbody",
    source="""
nbody_energy <- function(px, py, pz, vx, vy, vz, mass, nb) {
  e <- 0.0
  for (i in 1:nb) {
    e <- e + 0.5 * mass[[i]] * (vx[[i]]*vx[[i]] + vy[[i]]*vy[[i]] + vz[[i]]*vz[[i]])
    j <- i + 1L
    while (j <= nb) {
      dx <- px[[i]] - px[[j]]
      dy <- py[[i]] - py[[j]]
      dz <- pz[[i]] - pz[[j]]
      e <- e - mass[[i]] * mass[[j]] / sqrt(dx*dx + dy*dy + dz*dz)
      j <- j + 1L
    }
  }
  e
}

nbody_step <- function(px, py, pz, vx, vy, vz, mass, nb, steps) {
  dt <- 0.01
  for (s in 1:steps) {
    for (i in 1:nb) {
      j <- i + 1L
      while (j <= nb) {
        dx <- px[[i]] - px[[j]]
        dy <- py[[i]] - py[[j]]
        dz <- pz[[i]] - pz[[j]]
        d2 <- dx*dx + dy*dy + dz*dz
        mag <- dt / (d2 * sqrt(d2))
        vx[[i]] <- vx[[i]] - dx * mass[[j]] * mag
        vy[[i]] <- vy[[i]] - dy * mass[[j]] * mag
        vz[[i]] <- vz[[i]] - dz * mass[[j]] * mag
        vx[[j]] <- vx[[j]] + dx * mass[[i]] * mag
        vy[[j]] <- vy[[j]] + dy * mass[[i]] * mag
        vz[[j]] <- vz[[j]] + dz * mass[[i]] * mag
        j <- j + 1L
      }
      px[[i]] <- px[[i]] + dt * vx[[i]]
      py[[i]] <- py[[i]] + dt * vy[[i]]
      pz[[i]] <- pz[[i]] + dt * vz[[i]]
    }
  }
  nbody_energy(px, py, pz, vx, vy, vz, mass, nb)
}

nbody_run <- function(steps) {
  nb <- 5L
  pi2 <- 3.141592653589793
  solar <- 4.0 * pi2 * pi2
  days <- 365.24
  px <- c(0, 4.84143144246472090, 8.34336671824457987, 12.894369562139131, 15.379697114850917)
  py <- c(0, -1.16032004402742839, 4.12479856412430479, -15.111151401698631, -25.919314609987964)
  pz <- c(0, -0.103622044471123109, -0.403523417114321381, -0.223307578892655734, 0.179258772950371181)
  vx <- c(0, 0.00166007664274403694*days, -0.00276742510726862411*days, 0.00296460137564761618*days, 0.00288930532631982525*days)
  vy <- c(0, 0.00769901118419740425*days, 0.00499852801234917238*days, 0.00237847173959480950*days, 0.00114718438148081685*days)
  vz <- c(0, -0.0000690460016972063023*days, 0.0000230417297573763929*days, -0.0000296589568540237556*days, -0.000039021756012170231*days)
  mass <- c(1.0*solar, 0.000954791938424326609*solar, 0.000285885980666130812*solar,
            0.0000436624404335156298*solar, 0.0000515138902046611451*solar)
  momx <- 0.0; momy <- 0.0; momz <- 0.0
  for (i in 1:nb) {
    momx <- momx + vx[[i]] * mass[[i]]
    momy <- momy + vy[[i]] * mass[[i]]
    momz <- momz + vz[[i]] * mass[[i]]
  }
  vx[[1]] <- 0.0 - momx / mass[[1]]
  vy[[1]] <- 0.0 - momy / mass[[1]]
  vz[[1]] <- 0.0 - momz / mass[[1]]
  nbody_step(px, py, pz, vx, vy, vz, mass, nb, steps)
}
""",
    setup="invisible(NULL)",
    call="nbody_run({n}L)",
    n=120,
    n_test=10,
))

# ---------------------------------------------------------------------------
# spectralnorm (CLBG)
# ---------------------------------------------------------------------------

REGISTRY.add(Workload(
    name="spectralnorm",
    source="""
eval_A <- function(i, j) 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1)

eval_A_times_u <- function(u, n) {
  v <- numeric(n)
  for (i in 1:n) {
    s <- 0.0
    for (j in 1:n) s <- s + eval_A(i - 1L, j - 1L) * u[[j]]
    v[[i]] <- s
  }
  v
}

eval_At_times_u <- function(u, n) {
  v <- numeric(n)
  for (i in 1:n) {
    s <- 0.0
    for (j in 1:n) s <- s + eval_A(j - 1L, i - 1L) * u[[j]]
    v[[i]] <- s
  }
  v
}

spectral_run <- function(n) {
  u <- numeric(n)
  for (i in 1:n) u[[i]] <- 1.0
  v <- numeric(n)
  for (k in 1:4) {
    v <- eval_At_times_u(eval_A_times_u(u, n), n)
    u <- eval_At_times_u(eval_A_times_u(v, n), n)
  }
  vBv <- 0.0; vv <- 0.0
  for (i in 1:n) {
    vBv <- vBv + u[[i]] * v[[i]]
    vv <- vv + v[[i]] * v[[i]]
  }
  sqrt(vBv / vv)
}
""",
    setup="invisible(NULL)",
    call="spectral_run({n}L)",
    n=40,
    n_test=8,
))

# ---------------------------------------------------------------------------
# dotprod — BLAS-1 style reductions: dot product + gather sum
# ---------------------------------------------------------------------------

REGISTRY.add(Workload(
    name="dotprod",
    source="""
ddot <- function(x, y, n) {
  d <- 0.0
  for (i in 1:n) d <- d + x[[i]] * y[[i]]
  d
}

gather_sum <- function(x, idx, n) {
  g <- 0.0
  for (i in 1:n) g <- g + x[[idx[[i]]]]
  g
}

dot_run <- function(x, y, idx, n, reps) {
  acc <- 0.0
  for (r in 1:reps) acc <- acc + ddot(x, y, n) + gather_sum(x, idx, n)
  acc
}
""",
    setup="""
x <- 1.5 * (1:{n})
y <- 0.25 * (1:{n})
idx <- integer({n})
for (i in 1:{n}) idx[[i]] <- {n} + 1L - i
""",
    call="dot_run(x, y, idx, {n}L, 8L)",
    n=20000,
    n_test=2000,
    notes="two fused reductions per pass: x.y (VDOT) and a reversed-index "
          "gather sum (VGATHER_REDUCE) under a scalar repeat driver",
))

# ---------------------------------------------------------------------------
# fannkuchredux — integer permutations (CLBG)
# ---------------------------------------------------------------------------

REGISTRY.add(Workload(
    name="fannkuchredux",
    source="""
fannkuch <- function(n) {
  perm1 <- integer(n)
  for (i in 1:n) perm1[[i]] <- i
  perm <- integer(n)
  count <- integer(n)
  maxflips <- 0L
  r <- n
  done <- FALSE
  while (!done) {
    while (r > 1L) { count[[r]] <- r; r <- r - 1L }
    for (i in 1:n) perm[[i]] <- perm1[[i]]
    flips <- 0L
    k <- perm[[1]]
    while (k != 1L) {
      i <- 1L
      j <- k
      while (i < j) {
        t <- perm[[i]]; perm[[i]] <- perm[[j]]; perm[[j]] <- t
        i <- i + 1L; j <- j - 1L
      }
      flips <- flips + 1L
      k <- perm[[1]]
    }
    if (flips > maxflips) maxflips <- flips
    advancing <- TRUE
    while (advancing) {
      if (r == n) { done <- TRUE; advancing <- FALSE }
      else {
        # rotate the first r+1 elements left by one
        p0 <- perm1[[1]]
        i <- 1L
        while (i <= r) { perm1[[i]] <- perm1[[i + 1L]]; i <- i + 1L }
        perm1[[r + 1L]] <- p0
        count[[r + 1L]] <- count[[r + 1L]] - 1L
        if (count[[r + 1L]] > 0L) advancing <- FALSE
        else r <- r + 1L
      }
    }
  }
  maxflips
}
""",
    setup="invisible(NULL)",
    call="fannkuch({n}L)",
    n=7,
    n_test=5,
))

# ---------------------------------------------------------------------------
# pidigits — spigot algorithm on growing integers (CLBG, simplified)
# ---------------------------------------------------------------------------

REGISTRY.add(Workload(
    name="pidigits",
    source="""
pidigits_run <- function(ndigits) {
  # all-integer spigot: mini-R integers are arbitrary precision, like R+gmp
  q <- 1L; r <- 0L; t <- 1L; k <- 1L; nd <- 3L; l <- 3L
  produced <- 0L
  checksum <- 0L
  while (produced < ndigits) {
    if (4L * q + r - t < nd * t) {
      checksum <- (checksum * 10L + nd) %% 1000000L
      produced <- produced + 1L
      nr <- 10L * (r - nd * t)
      nd <- (10L * (3L * q + r)) %/% t - 10L * nd
      q <- q * 10L
      r <- nr
    } else {
      nr <- (2L * q + r) * l
      nn <- (q * (7L * k) + 2L + r * l) %/% (t * l)
      q <- q * k
      t <- t * l
      l <- l + 2L
      k <- k + 1L
      nd <- nn
      r <- nr
    }
  }
  checksum
}
""",
    setup="invisible(NULL)",
    call="pidigits_run({n}L)",
    n=120,
    n_test=25,
))

# ---------------------------------------------------------------------------
# binarytrees — allocation-heavy recursion over lists (CLBG)
# ---------------------------------------------------------------------------

REGISTRY.add(Workload(
    name="binarytrees",
    source="""
bt_make <- function(depth) {
  if (depth == 0L) list(NULL, NULL)
  else list(bt_make(depth - 1L), bt_make(depth - 1L))
}

bt_check <- function(node) {
  if (is.null(node[[1]])) 1L
  else 1L + bt_check(node[[1]]) + bt_check(node[[2]])
}

binarytrees_run <- function(maxdepth) {
  total <- 0L
  d <- 4L
  while (d <= maxdepth) {
    iters <- 2L ^ (maxdepth - d + 4L)
    csum <- 0L
    for (i in 1:iters) csum <- csum + bt_check(bt_make(d))
    total <- total + csum %% 100000L
    d <- d + 2L
  }
  total
}
""",
    setup="invisible(NULL)",
    call="binarytrees_run({n}L)",
    n=6,
    n_test=4,
))

# ---------------------------------------------------------------------------
# storage — vector growth and nested lists (Ř suite / Martin's storage)
# ---------------------------------------------------------------------------

REGISTRY.add(Workload(
    name="storage",
    source="""
storage_build <- function(depth, seedv) {
  count <- 0L
  stack <- list()
  top <- 0L
  node_depth <- depth
  while (node_depth > 0L) {
    arr <- numeric(4L)
    for (i in 1:4L) {
      seedv <- (seedv * 1309L + 13849L) %% 65536L
      arr[[i]] <- seedv
    }
    count <- count + 4L
    top <- top + 1L
    stack[[top]] <- arr
    node_depth <- node_depth - 1L
  }
  s <- 0
  for (i in 1:top) {
    a <- stack[[i]]
    for (j in 1:4L) s <- s + a[[j]]
  }
  s + count
}

storage_run <- function(reps) {
  acc <- 0
  for (r in 1:reps) acc <- acc + storage_build(40L, r)
  acc %% 1000000
}
""",
    setup="invisible(NULL)",
    call="storage_run({n}L)",
    n=120,
    n_test=20,
))

# ---------------------------------------------------------------------------
# flexclust — k-means style clustering (the paper's memory outlier)
# ---------------------------------------------------------------------------

REGISTRY.add(Workload(
    name="flexclust",
    source="""
kmeans_assign <- function(xs, ys, cx, cy, assign, npts, k) {
  changed <- 0L
  for (i in 1:npts) {
    best <- 1L
    bestd <- 1e300
    for (c in 1:k) {
      dx <- xs[[i]] - cx[[c]]
      dy <- ys[[i]] - cy[[c]]
      d <- dx * dx + dy * dy
      if (d < bestd) { bestd <- d; best <- c }
    }
    if (assign[[i]] != best) { assign[[i]] <- best; changed <- changed + 1L }
  }
  list(assign, changed)
}

kmeans_update <- function(xs, ys, assign, npts, k) {
  cx <- numeric(k); cy <- numeric(k); cnt <- integer(k)
  for (i in 1:npts) {
    c <- assign[[i]]
    cx[[c]] <- cx[[c]] + xs[[i]]
    cy[[c]] <- cy[[c]] + ys[[i]]
    cnt[[c]] <- cnt[[c]] + 1L
  }
  for (c in 1:k) {
    if (cnt[[c]] > 0L) { cx[[c]] <- cx[[c]] / cnt[[c]]; cy[[c]] <- cy[[c]] / cnt[[c]] }
  }
  list(cx, cy)
}

flexclust_run <- function(npts) {
  k <- 5L
  xs <- numeric(npts); ys <- numeric(npts)
  seedv <- 12345
  for (i in 1:npts) {
    seedv <- (seedv * 1309 + 13849) %% 65536
    xs[[i]] <- seedv / 655.36
    seedv <- (seedv * 1309 + 13849) %% 65536
    ys[[i]] <- seedv / 655.36
  }
  assign <- integer(npts)
  for (i in 1:npts) assign[[i]] <- i %% k + 1L
  cx <- numeric(k); cy <- numeric(k)
  for (c in 1:k) { cx[[c]] <- c * 17.0; cy[[c]] <- c * 11.0 }
  iters <- 0L
  changed <- 1L
  while (changed > 0L && iters < 15L) {
    res <- kmeans_assign(xs, ys, cx, cy, assign, npts, k)
    assign <- res[[1]]
    changed <- res[[2]]
    cents <- kmeans_update(xs, ys, assign, npts, k)
    cx <- cents[[1]]
    cy <- cents[[2]]
    iters <- iters + 1L
  }
  s <- 0
  for (c in 1:k) s <- s + cx[[c]] + cy[[c]]
  s
}
""",
    setup="invisible(NULL)",
    call="flexclust_run({n}L)",
    n=300,
    n_test=40,
))

# ---------------------------------------------------------------------------
# primes — sieve of Eratosthenes (logical vectors)
# ---------------------------------------------------------------------------

REGISTRY.add(Workload(
    name="primes",
    source="""
sieve_run <- function(limit) {
  flags <- logical(limit)
  for (i in 1:limit) flags[[i]] <- TRUE
  count <- 0L
  i <- 2L
  while (i <= limit) {
    if (flags[[i]]) {
      count <- count + 1L
      j <- i + i
      while (j <= limit) {
        flags[[j]] <- FALSE
        j <- j + i
      }
    }
    i <- i + 1L
  }
  count
}
""",
    setup="invisible(NULL)",
    call="sieve_run({n}L)",
    n=4000,
    n_test=500,
))

# ---------------------------------------------------------------------------
# nbody_naive — the paper's excluded-by-runtime benchmark: same physics but
# through a megamorphic accessor layer, pathological under chaos mode
# ---------------------------------------------------------------------------

REGISTRY.add(Workload(
    name="nbody_naive",
    source="""
vget <- function(v, i) v[[i]]
vset <- function(v, i, x) { v[[i]] <- x; v }

naive_energy <- function(px, py, pz, mass, nb) {
  e <- 0.0
  for (i in 1:nb) {
    j <- i + 1L
    while (j <= nb) {
      dx <- vget(px, i) - vget(px, j)
      dy <- vget(py, i) - vget(py, j)
      dz <- vget(pz, i) - vget(pz, j)
      e <- e - vget(mass, i) * vget(mass, j) / sqrt(dx*dx + dy*dy + dz*dz)
      j <- j + 1L
    }
  }
  e
}

nbody_naive_run <- function(reps) {
  nb <- 5L
  px <- c(0, 4.84, 8.34, 12.89, 15.37)
  py <- c(0, -1.16, 4.12, -15.11, -25.91)
  pz <- c(0, -0.10, -0.40, -0.22, 0.17)
  mass <- c(39.47, 0.037, 0.011, 0.0017, 0.0020)
  e <- 0.0
  for (r in 1:reps) e <- e + naive_energy(px, py, pz, mass, nb)
  e
}
""",
    setup="invisible(NULL)",
    call="nbody_naive_run({n}L)",
    n=250,
    n_test=25,
    notes="excluded from the paper's Figure 6 (too slow in the deopt-trigger mode)",
))
