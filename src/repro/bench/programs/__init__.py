"""mini-R benchmark programs; importing this package populates the workload
registry (``repro.bench.workload.REGISTRY``)."""

from . import calls, envcapture, paper_examples, phaseflip, polycalls, reopt, suite, volcano  # noqa: F401

from ..workload import REGISTRY

__all__ = ["REGISTRY"]
