"""Entry-polymorphic call workloads — one closure, several argument contexts.

These are the contextual-dispatch workloads: each driver calls the *same*
closure in a hot loop while alternating the argument types per iteration
(integer vector vs double vector, integer scalar vs double scalar, ...).
With a single compiled version the callee speculates on the first context,
deopts on the second, re-speculates on the lub, deopts again and finally
settles on generic boxed code.  With contextual dispatch each context gets
its own specialized version — typed, unboxed loops — selected by an entry
check that the body never repeats.
"""

from __future__ import annotations

from ..workload import REGISTRY, Workload

REGISTRY.add(Workload(
    name="ctx_poly_sum",
    source="""
pc_sum <- function(data, len) {
  total <- 0
  i <- 1
  while (i <= len) {
    total <- total + data[[i]]
    i <- i + 1
  }
  total
}
ctx_poly_sum_run <- function(n, xi, xd, len) {
  s <- 0
  i <- 0
  while (i < n) {
    s <- s + pc_sum(xi, len)
    s <- s + pc_sum(xd, len)
    i <- i + 1
  }
  s
}
""",
    setup="pcs_xi <- 1:64\npcs_xd <- 1:64 + 0.5",
    call="ctx_poly_sum_run({n}, pcs_xi, pcs_xd, 64L)",
    n=600,
    n_test=60,
    notes="int-vector and dbl-vector contexts alternate at one call site; "
          "the callee loops, so it cannot be inlined away",
))

REGISTRY.add(Workload(
    name="ctx_poly_acc",
    source="""
pa_acc <- function(s, x, k) {
  r <- s + x * k
  r - k
}
ctx_poly_acc_run <- function(n) {
  s <- 0
  i <- 0
  while (i < n) {
    s <- s + pa_acc(0L, 2L, 3L)
    s <- s + pa_acc(0.5, 2.5, 3.5)
    i <- i + 1
  }
  s
}
""",
    setup="invisible(NULL)",
    call="ctx_poly_acc_run({n})",
    n=30000,
    n_test=3000,
    notes="scalar int and scalar dbl contexts alternate per iteration",
))

REGISTRY.add(Workload(
    name="ctx_poly_mix3",
    source="""
pm_step <- function(a, b) {
  if (b) a + a else a
}
pm_wide <- function(v, len) {
  t <- 0
  j <- 1
  while (j <= len) {
    t <- t + v[[j]]
    j <- j + 1
  }
  t
}
ctx_poly_mix3_run <- function(n, xi, xd, len) {
  s <- 0
  i <- 0
  while (i < n) {
    s <- s + pm_wide(xi, len)
    s <- s + pm_wide(xd, len)
    s <- s + pm_step(i, TRUE)
    i <- i + 1
  }
  s
}
""",
    setup="pm_xi <- 1:32\npm_xd <- 1:32 * 1.5",
    call="ctx_poly_mix3_run({n}, pm_xi, pm_xd, 32L)",
    n=900,
    n_test=90,
    notes="three contexts across two callees: int/dbl vector sums plus a "
          "scalar int+lgl step",
))
