"""Phase-change microbenchmarks — loops that flip a variable's type mid-run.

These are the dispatched-OSR workloads (``osr/osr_hop.py``), modeled on the
paper's Figure 6 mis-speculation study: a hot loop is warmed up
monomorphically (integer vectors), then the measured calls swap in a double
vector *mid-iteration* (``if (i == h) x <- b``), so the type assumption is
refuted in the middle of compiled code, never at the call boundary.  Each
body routes the element through a small global helper closure — the
speculative inline keeps per-iteration guards alive (they cannot be hoisted
past the flip), which is what gives chaos mode (section 5.1) guard sites to
fire on *inside* deoptless continuations.  A continuation-interior
mis-speculation is precisely the case the terminal-continuation baseline
handles worst (drop the continuation, interpret the rest of the loop) and
dispatched OSR handles best (hop back into the surviving version at the
header).

* ``phaseflip_sum`` — running sum over the flipping vector.
* ``phaseflip_dot`` — dot-product against a stable integer vector; the
  flip changes only one side of the multiply.
* ``phaseflip_twice`` — two flips (int -> double -> int): the *continuation*
  compiled after the first flip is itself mis-specialized for the tail.

The helper closures live at global scope deliberately (stable identity =>
monomorphic call feedback => the builder inlines them with an identity
guard per iteration).
"""

from __future__ import annotations

from ..workload import REGISTRY, Workload

REGISTRY.add(Workload(
    name="phaseflip_sum",
    source="""
pf_step <- function(v, k) v + k
pf_sum <- function(a, b, n) {
  s <- 0
  x <- a
  h <- n %/% 2L
  i <- 1L
  while (i <= n) {
    if (i == h) x <- b
    s <- s + pf_step(x[[i]], 1L)
    i <- i + 1L
  }
  s
}
""",
    setup="""
pf_n <- {n}L
pf_ai <- integer(pf_n)
for (i in 1:pf_n) pf_ai[[i]] <- i
pf_br <- numeric(pf_n)
for (i in 1:pf_n) pf_br[[i]] <- i * 1.0
for (w in 1:3) pf_sum(pf_ai, pf_ai, pf_n)
""",
    call="pf_sum(pf_ai, pf_br, pf_n)",
    n=20000,
    n_test=2000,
    notes="int warmup, double flip at n/2; inlined helper keeps loop guards",
))

REGISTRY.add(Workload(
    name="phaseflip_dot",
    source="""
pf_mul <- function(u, v) u * v
pf_dot <- function(a, b, w, n) {
  s <- 0
  x <- a
  h <- n %/% 2L
  i <- 1L
  while (i <= n) {
    if (i == h) x <- b
    s <- s + pf_mul(x[[i]], w[[i]])
    i <- i + 1L
  }
  s
}
""",
    setup="""
pf_n <- {n}L
pf_ai <- integer(pf_n)
for (i in 1:pf_n) pf_ai[[i]] <- i
pf_br <- numeric(pf_n)
for (i in 1:pf_n) pf_br[[i]] <- i * 0.5
pf_wi <- integer(pf_n)
for (i in 1:pf_n) pf_wi[[i]] <- 2L
for (w in 1:3) pf_dot(pf_ai, pf_ai, pf_wi, pf_n)
""",
    call="pf_dot(pf_ai, pf_br, pf_wi, pf_n)",
    n=20000,
    n_test=2000,
    notes="dot-product; one side flips int->double at n/2",
))

REGISTRY.add(Workload(
    name="phaseflip_twice",
    source="""
pf_inc <- function(v, k) v + k
pf_twice <- function(a, b, n) {
  s <- 0
  x <- a
  h1 <- n %/% 3L
  h2 <- h1 + h1
  i <- 1L
  while (i <= n) {
    if (i == h1) x <- b
    if (i == h2) x <- a
    s <- s + pf_inc(x[[i]], 1L)
    i <- i + 1L
  }
  s
}
""",
    setup="""
pf_n <- {n}L
pf_ai <- integer(pf_n)
for (i in 1:pf_n) pf_ai[[i]] <- i
pf_br <- numeric(pf_n)
for (i in 1:pf_n) pf_br[[i]] <- i * 1.0
for (w in 1:3) pf_twice(pf_ai, pf_ai, pf_n)
""",
    call="pf_twice(pf_ai, pf_br, pf_n)",
    n=20000,
    n_test=2000,
    notes="double flip int->double->int; the first continuation is itself "
          "mis-specialized for the tail",
))
