"""The volcano ray-tracing app (paper Figures 7–9).

The paper packages Tyler Morgan's "throwing shade" ray tracer as a shiny
app rendering a volcano height map with user-selectable sun position and
numerical interpolation functions; user interactions switch the
interpolation function (a call-target deopt) or the height-map element type
(a typecheck deopt).

We reproduce the computational core in mini-R: a synthetic volcano height
map (cone + ripples, mirroring the shape of R's ``volcano`` dataset), a ray
marcher that walks each pixel's sun ray over the terrain using a pluggable
interpolation function, and a "render" pass that maps intensities to color
buckets (the ggplot2 stand-in).  The shiny session itself is replayed by
the Figure-8 driver as a scripted sequence of interactions.
"""

from __future__ import annotations

from ..workload import REGISTRY, Workload

VOLCANO_SOURCE = """
# --- height map construction -------------------------------------------------
volcano_heightmap <- function(w, h) {
  hm <- numeric(w * h)
  cx <- w / 2.0
  cy <- h / 2.0
  for (yy in 1:h) {
    for (xx in 1:w) {
      dx <- (xx - cx) / cx
      dy <- (yy - cy) / cy
      d <- sqrt(dx * dx + dy * dy)
      elev <- 100.0 + 90.0 * exp(0.0 - 3.0 * d * d) + 6.0 * sin(7.0 * d) - 30.0 * d
      if (d < 0.18) elev <- elev - 40.0 * (0.18 - d) / 0.18
      hm[[(yy - 1L) * w + xx]] <- elev
    }
  }
  hm
}

volcano_heightmap_int <- function(w, h) {
  hm0 <- volcano_heightmap(w, h)
  hmi <- integer(w * h)
  for (i in 1:(w * h)) hmi[[i]] <- as.integer(hm0[[i]])
  hmi
}

# --- interpolation functions (the user-selectable numerical kernels) ----------
interp_bilinear <- function(hm, w, h, x, y) {
  x0 <- floor(x); y0 <- floor(y)
  fx <- x - x0;   fy <- y - y0
  ix <- as.integer(x0); iy <- as.integer(y0)
  if (ix < 1L) { ix <- 1L; fx <- 0.0 }
  if (iy < 1L) { iy <- 1L; fy <- 0.0 }
  if (ix >= w) { ix <- w - 1L; fx <- 1.0 }
  if (iy >= h) { iy <- h - 1L; fy <- 1.0 }
  base <- (iy - 1L) * w + ix
  h00 <- hm[[base]]
  h10 <- hm[[base + 1L]]
  h01 <- hm[[base + w]]
  h11 <- hm[[base + w + 1L]]
  h00 * (1 - fx) * (1 - fy) + h10 * fx * (1 - fy) + h01 * (1 - fx) * fy + h11 * fx * fy
}

interp_nearest <- function(hm, w, h, x, y) {
  ix <- as.integer(floor(x + 0.5))
  iy <- as.integer(floor(y + 0.5))
  if (ix < 1L) ix <- 1L
  if (iy < 1L) iy <- 1L
  if (ix > w) ix <- w
  if (iy > h) iy <- h
  hm[[(iy - 1L) * w + ix]]
}

# --- the ray marcher ----------------------------------------------------------
trace_rays <- function(hm, w, h, sunx, suny, sunz, interp) {
  img <- numeric(w * h)
  mag <- sqrt(sunx * sunx + suny * suny + sunz * sunz)
  dx <- sunx / mag
  dy <- suny / mag
  dz <- sunz / mag
  for (yy in 1:h) {
    for (xx in 1:w) {
      px <- xx * 1.0
      py <- yy * 1.0
      pz <- interp(hm, w, h, px, py) + 0.01
      lit <- 1.0
      steps <- 0L
      while (steps < 28L && lit > 0.0) {
        px <- px + dx * 2.0
        py <- py + dy * 2.0
        pz <- pz + dz * 2.0
        if (px < 1 || px > w || py < 1 || py > h || pz > 220.0) steps <- 28L
        else {
          ground <- interp(hm, w, h, px, py)
          if (ground > pz) lit <- 0.0
        }
        steps <- steps + 1L
      }
      img[[(yy - 1L) * w + xx]] <- lit
    }
  }
  img
}

# --- manually inlined ray marcher (nearest interpolation fused into the
# --- loop): the paper's "simplified" figure-9 variant
trace_rays_inline <- function(hm, w, h, sunx, suny, sunz) {
  img <- numeric(w * h)
  mag <- sqrt(sunx * sunx + suny * suny + sunz * sunz)
  dx <- sunx / mag
  dy <- suny / mag
  dz <- sunz / mag
  for (yy in 1:h) {
    for (xx in 1:w) {
      px <- xx * 1.0
      py <- yy * 1.0
      ix <- xx; iy <- yy
      pz <- hm[[(iy - 1L) * w + ix]] + 0.01
      lit <- 1.0
      steps <- 0L
      while (steps < 28L && lit > 0.0) {
        px <- px + dx * 2.0
        py <- py + dy * 2.0
        pz <- pz + dz * 2.0
        if (px < 1 || px > w || py < 1 || py > h || pz > 220.0) steps <- 28L
        else {
          ix <- as.integer(floor(px + 0.5))
          iy <- as.integer(floor(py + 0.5))
          if (ix < 1L) ix <- 1L
          if (iy < 1L) iy <- 1L
          if (ix > w) ix <- w
          if (iy > h) iy <- h
          ground <- hm[[(iy - 1L) * w + ix]]
          if (ground > pz) lit <- 0.0
        }
        steps <- steps + 1L
      }
      img[[(yy - 1L) * w + xx]] <- lit
    }
  }
  img
}

# --- the "ggplot" stand-in: map intensities to color buckets.  The scale
# --- parameter is user-controlled (like ggplot's aesthetics); sessions that
# --- change its type make the renderer deoptimize, mirroring the paper's
# --- figure-8 rendering-step measurements
render_image <- function(img, hm, w, h, scale) {
  buckets <- integer(16L)
  for (i in 1:(w * h)) {
    shade <- img[[i]]
    elev <- hm[[i]] * scale
    level <- as.integer((elev - 20.0) / 15.0)
    if (level < 0L) level <- 0L
    if (level > 7L) level <- 7L
    b <- level + 1L
    if (shade > 0.5) b <- b + 8L
    buckets[[b]] <- buckets[[b]] + 1L
  }
  buckets
}

volcano_frame <- function(hm, w, h, sunx, suny, interp) {
  img <- trace_rays(hm, w, h, sunx, suny, 0.35, interp)
  render_image(img, hm, w, h, 1.0)
}
"""

REGISTRY.add(Workload(
    name="volcano",
    source=VOLCANO_SOURCE,
    setup="""
vw <- {n}L
vh <- {n}L
hm_dbl <- volcano_heightmap(vw, vh)
hm_int <- volcano_heightmap_int(vw, vh)
""",
    call="volcano_frame(hm_dbl, vw, vh, 1.0, 0.6, interp_bilinear)",
    n=24,
    n_test=10,
    notes="figure 8/9 drivers vary the interpolation fn and height-map type",
))
