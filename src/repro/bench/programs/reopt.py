"""The three benchmarks from "Sampling Optimized Code for Type Feedback"
(Flückiger et al., DLS 2020 — reference [14] of the deoptless paper), used
by Figure 11 to compare deoptless against profile-driven reoptimization.

1. **stale_feedback** — a microbenchmark whose early profile is misleading:
   the function warms up on one type through a flag-selected path, then the
   flag flips.  The phase change happens through an ordinary branch, *not*
   a failing assumption, so deoptless has no deopt to intercept (expected
   speedup ≈ 1×; the reoptimization paper reports up to 1.2×).

2. **rsa** — modular exponentiation where the key changes representation
   (integer → double) mid-run, triggering a typecheck deoptimization and,
   normally, a more generic recompile.  This is the case deoptless improves
   (the reoptimization paper reports 1.4×).

3. **shared_function** — a helper shared by two callers with different
   argument types merges unrelated type feedback and compiles generically
   from the start; again no deopt, so deoptless is expected to be neutral
   (reoptimization paper: 1.5×).
"""

from __future__ import annotations

from ..workload import REGISTRY, Workload

STALE_FEEDBACK_SOURCE = """
stale_kernel <- function(v, n, scale) {
  acc <- 0
  for (i in 1:n) acc <- acc + v[[i]] * scale
  acc
}

stale_run <- function(v, n, scale, reps) {
  s <- 0
  for (r in 1:reps) s <- s + stale_kernel(v, n, scale)
  s
}
"""

REGISTRY.add(Workload(
    name="reopt_stale_feedback",
    source=STALE_FEEDBACK_SOURCE,
    setup="""
sf_n <- {n}L
sf_int <- integer(sf_n); for (i in 1:sf_n) sf_int[[i]] <- i
sf_dbl <- numeric(sf_n); for (i in 1:sf_n) sf_dbl[[i]] <- i * 1.0
""",
    call="stale_run(sf_dbl, sf_n, 2.0, 4L)",
    n=1500,
    n_test=100,
    notes="the figure-11 driver warms up on sf_int, then switches to sf_dbl",
))

RSA_SOURCE = """
# modular exponentiation by repeated squaring -- the core of RSA
powmod <- function(base, exp, mod) {
  result <- 1L
  b <- base %% mod
  e <- exp
  while (e > 0L) {
    if (e %% 2L == 1L) result <- (result * b) %% mod
    e <- e %/% 2L
    b <- (b * b) %% mod
  }
  result
}

rsa_encrypt_all <- function(msgs, nmsg, key, mod) {
  out <- integer(nmsg)
  for (i in 1:nmsg) {
    enc <- powmod(msgs[[i]], key, mod)
    out[[i]] <- as.integer(enc)
  }
  out
}

rsa_run <- function(msgs, nmsg, key, mod, reps) {
  acc <- 0L
  for (r in 1:reps) {
    enc <- rsa_encrypt_all(msgs, nmsg, key, mod)
    acc <- (acc + enc[[1]] + enc[[nmsg]]) %% 100000L
  }
  acc
}
"""

REGISTRY.add(Workload(
    name="reopt_rsa",
    source=RSA_SOURCE,
    setup="""
rsa_n <- {n}L
rsa_msgs <- integer(rsa_n)
for (i in 1:rsa_n) rsa_msgs[[i]] <- (i * 7919L) %% 1000003L
rsa_key_int <- 1073741789L
rsa_key_dbl <- 1073741789.0
rsa_mod <- 1000003L
""",
    call="rsa_run(rsa_msgs, rsa_n, rsa_key_int, rsa_mod, 2L)",
    n=250,
    n_test=30,
    notes="the figure-11 driver switches the key parameter to rsa_key_dbl",
))

SHARED_FUNCTION_SOURCE = """
# a helper shared by two callers with different argument types: its type
# feedback merges both and it compiles generically from the start
shared_dot <- function(a, b, n) {
  s <- 0
  for (i in 1:n) s <- s + a[[i]] * b[[i]]
  s
}

caller_int <- function(x, n, reps) {
  s <- 0
  for (r in 1:reps) s <- s + shared_dot(x, x, n)
  s
}

caller_dbl <- function(y, n, reps) {
  s <- 0
  for (r in 1:reps) s <- s + shared_dot(y, y, n)
  s
}

shared_run <- function(x, y, n, reps) {
  caller_int(x, n, reps) + caller_dbl(y, n, reps)
}
"""

REGISTRY.add(Workload(
    name="reopt_shared_function",
    source=SHARED_FUNCTION_SOURCE,
    setup="""
sh_n <- {n}L
sh_int <- integer(sh_n); for (i in 1:sh_n) sh_int[[i]] <- i %% 97L
sh_dbl <- numeric(sh_n); for (i in 1:sh_n) sh_dbl[[i]] <- i * 0.25
""",
    call="shared_run(sh_int, sh_dbl, sh_n, 3L)",
    n=1200,
    n_test=80,
))
