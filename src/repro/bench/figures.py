"""Drivers that regenerate every table and figure of the paper's evaluation.

Each ``fig*`` function runs the corresponding experiment at a chosen scale
and returns a structured result (plus a printable report).  The benchmark
suite under ``benchmarks/`` calls these and asserts the qualitative shape
of each result (who wins, roughly by how much, where the crossovers fall);
EXPERIMENTS.md records paper-vs-measured numbers.

Scales: ``"test"`` (seconds, used by pytest) and ``"full"`` (minutes,
closer to the paper's sizes).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..jit.config import Config
from ..jit.vm import RVM
from . import programs  # populates the registry
from .harness import Phase, RunResult, compare_phases, geomean, run_phases
from .workload import REGISTRY


def _n(workload, scale: str) -> int:
    return workload.n if scale == "full" else workload.n_test


# ---------------------------------------------------------------------------
# Figure 4 — sum() over int -> float -> complex -> float phases
# ---------------------------------------------------------------------------

@dataclass
class Fig4Result:
    normal: RunResult
    deoptless: RunResult

    def report(self) -> str:
        from .harness import format_series_table

        return format_series_table([self.normal, self.deoptless])


def fig4_sum_phases(scale: str = "test", iterations: int = 5) -> Fig4Result:
    from .programs.paper_examples import SUM_PHASE_SETUPS, SUM_SOURCE

    w = REGISTRY.get("sum_phases")
    n = _n(w, scale)
    phases = [
        Phase("int", ("length <- %dL\n" % n) + SUM_PHASE_SETUPS["int"].format(n=n), "sum()", iterations),
        Phase("float", SUM_PHASE_SETUPS["float"].format(n=n), "sum()", iterations),
        Phase("complex", SUM_PHASE_SETUPS["complex"].format(n=n), "sum()", iterations),
        Phase("float2", SUM_PHASE_SETUPS["float"].format(n=n), "sum()", iterations),
    ]
    normal, deoptless = compare_phases(SUM_SOURCE, phases)
    return Fig4Result(normal, deoptless)


# ---------------------------------------------------------------------------
# Figure 6 — speedup under randomly failing assumptions (1 in 10k)
# ---------------------------------------------------------------------------

#: the suite used for the mis-speculation experiment (paper: the Ř main
#: benchmark suite; nbody_naive is reported separately there, as here)
FIG6_SUITE = [
    "binarytrees", "bounce", "fannkuchredux", "flexclust", "mandelbrot",
    "nbody", "pidigits", "primes", "spectralnorm", "storage",
]


@dataclass
class Fig6Row:
    name: str
    speedup: float
    per_iteration: List[float]
    normal_deopts: int
    deoptless_dispatches: int
    mem_normal: float
    mem_deoptless: float
    #: interpreter-op share: how much execution fell back to the slow tier
    interp_ops_normal: int = 0
    interp_ops_deoptless: int = 0


@dataclass
class Fig6Result:
    rows: List[Fig6Row]
    chaos_rate: float

    def report(self) -> str:
        lines = [
            "Figure 6: deoptless speedup with randomly failing assumptions "
            "(rate %g)" % self.chaos_rate,
            "%-16s %9s %8s %9s %10s" % ("benchmark", "speedup", "deopts", "dispatch", "mem ratio"),
        ]
        for r in self.rows:
            lines.append("%-16s %8.2fx %8d %9d %9.2f" % (
                r.name, r.speedup, r.normal_deopts, r.deoptless_dispatches,
                r.mem_deoptless / r.mem_normal if r.mem_normal else float("nan"),
            ))
        lines.append("geomean speedup: %.2fx" % geomean([r.speedup for r in self.rows]))
        return "\n".join(lines)


def fig6_misspeculation(
    scale: str = "test",
    iterations: int = 8,
    warmup: int = 2,
    chaos_rate: float = 1e-4,
    names: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> Fig6Result:
    rows = []
    for name in (names or FIG6_SUITE):
        w = REGISTRY.get(name)
        n = _n(w, scale)
        phases = [Phase("chaos", "", w.call_code(n), iterations)]
        base = Config(chaos_rate=chaos_rate, chaos_seed=seed)
        normal = run_phases(
            dataclasses.replace(base, enable_deoptless=False),
            w.source, phases, "normal", global_setup=w.setup_code(n),
        )
        deoptless = run_phases(
            dataclasses.replace(base, enable_deoptless=True),
            w.source, phases, "deoptless", global_setup=w.setup_code(n),
        )
        per_iter = []
        for a, b in zip(normal.records[warmup:], deoptless.records[warmup:]):
            if b.wall_s > 0:
                per_iter.append(a.wall_s / b.wall_s)
        rows.append(Fig6Row(
            name=name,
            speedup=geomean(per_iter),
            per_iteration=per_iter,
            normal_deopts=normal.total_deopts(),
            deoptless_dispatches=deoptless.records[-1].deoptless_dispatches,
            mem_normal=normal.vm.state.memory_proxy(),
            mem_deoptless=deoptless.vm.state.memory_proxy(),
            interp_ops_normal=normal.vm.state.interp_ops,
            interp_ops_deoptless=deoptless.vm.state.interp_ops,
        ))
    return Fig6Result(rows, chaos_rate)


# ---------------------------------------------------------------------------
# Figures 8 & 9 — the volcano ray-tracing app
# ---------------------------------------------------------------------------

#: the recorded interactive session for Figure 8: (description, setup, n_frames).
#: Interactions switch the interpolation function (ray-tracer deopts) and
#: the elevation scale's type (renderer deopts) — the two user-driven
#: unpredictability sources the paper describes.
VOLCANO_SESSION = [
    ("open app", "", 3),
    ("move sun", "sunx <- 0.4; suny <- 1.0", 2),
    ("switch interp -> nearest", "cur_interp <- interp_nearest", 3),
    ("set elevation scale 1.1", "cur_scale <- 1.1", 2),
    ("switch interp -> bilinear", "cur_interp <- interp_bilinear", 3),
    ("set elevation scale 1L", "cur_scale <- 1L", 2),
    ("switch interp -> nearest", "cur_interp <- interp_nearest", 3),
    ("set elevation scale 0.9", "cur_scale <- 0.9", 2),
]


@dataclass
class Fig8Step:
    interaction: str
    trace_speedup: float
    render_speedup: float


@dataclass
class Fig8Result:
    steps: List[Fig8Step]

    def report(self) -> str:
        lines = [
            "Figure 8: volcano app interactive session (deoptless speedup)",
            "%-28s %12s %12s" % ("interaction", "ray-tracing", "rendering"),
        ]
        for s in self.steps:
            lines.append("%-28s %11.2fx %11.2fx" % (s.interaction, s.trace_speedup, s.render_speedup))
        return "\n".join(lines)


def _volcano_session_run(config: Config, scale: str) -> List[Tuple[str, float, float]]:
    from .programs.volcano import VOLCANO_SOURCE

    w = REGISTRY.get("volcano")
    n = _n(w, scale)
    vm = RVM(config)
    vm.eval(VOLCANO_SOURCE)
    vm.eval("vw <- %dL\nvh <- %dL\nhm_dbl <- volcano_heightmap(vw, vh)" % (n, n))
    vm.eval("sunx <- 1.0; suny <- 0.6; cur_interp <- interp_bilinear; cur_scale <- 1.0")
    out = []
    for desc, setup, frames in VOLCANO_SESSION:
        if setup:
            vm.eval(setup)
        for _ in range(frames):
            t0 = time.perf_counter()
            vm.eval("img <- trace_rays(hm_dbl, vw, vh, sunx, suny, 0.35, cur_interp)")
            t_trace = time.perf_counter() - t0
            t0 = time.perf_counter()
            vm.eval("render_image(img, hm_dbl, vw, vh, cur_scale)")
            t_render = time.perf_counter() - t0
            out.append((desc, t_trace, t_render))
    return out


def fig8_volcano_app(scale: str = "test") -> Fig8Result:
    normal = _volcano_session_run(Config(enable_deoptless=False), scale)
    deoptless = _volcano_session_run(Config(enable_deoptless=True), scale)
    steps = []
    for (desc, tn, rn), (_, td, rd) in zip(normal, deoptless):
        steps.append(Fig8Step(desc, tn / td if td > 0 else float("nan"),
                              rn / rd if rd > 0 else float("nan")))
    return Fig8Result(steps)


@dataclass
class Fig9Result:
    #: per-variant (name -> (normal series, deoptless series))
    variants: Dict[str, Tuple[RunResult, RunResult]]

    def report(self) -> str:
        from .harness import format_series_table

        parts = ["Figure 9: ray tracer with a phase change at iteration 5"]
        for name, (n, d) in self.variants.items():
            parts.append("-- %s" % name)
            parts.append(format_series_table([n, d]))
        return "\n".join(parts)


def fig9_raytracer_phases(scale: str = "test", iterations: int = 5) -> Fig9Result:
    """Three experiments, phase change mid-run (paper: at iteration 5 of 10):
    height-map type change (simplified + full) and interpolation change."""
    from .programs.volcano import VOLCANO_SOURCE

    w = REGISTRY.get("volcano")
    n = _n(w, scale)
    setup = "vw <- %dL\nvh <- %dL\nhm_dbl <- volcano_heightmap(vw, vh)\nhm_int <- volcano_heightmap_int(vw, vh)" % (n, n)

    variants = {}
    # (a) simplified: the manually inlined kernel (as in the paper), height
    # map dbl -> int
    phases_a = [
        Phase("dbl", "", "trace_rays_inline(hm_dbl, vw, vh, 1.0, 0.6, 0.35)", iterations),
        Phase("int", "", "trace_rays_inline(hm_int, vw, vh, 1.0, 0.6, 0.35)", iterations),
    ]
    variants["heightmap type (simplified)"] = compare_phases(
        VOLCANO_SOURCE, phases_a, global_setup=setup)
    # (b) full: bilinear interpolation, height map dbl -> int
    phases_b = [
        Phase("dbl", "", "volcano_frame(hm_dbl, vw, vh, 1.0, 0.6, interp_bilinear)", iterations),
        Phase("int", "", "volcano_frame(hm_int, vw, vh, 1.0, 0.6, interp_bilinear)", iterations),
    ]
    variants["heightmap type (full)"] = compare_phases(
        VOLCANO_SOURCE, phases_b, global_setup=setup)
    # (c) interpolation function change
    phases_c = [
        Phase("bilinear", "", "volcano_frame(hm_dbl, vw, vh, 1.0, 0.6, interp_bilinear)", iterations),
        Phase("nearest", "", "volcano_frame(hm_dbl, vw, vh, 1.0, 0.6, interp_nearest)", iterations),
    ]
    variants["interpolation change"] = compare_phases(
        VOLCANO_SOURCE, phases_c, global_setup=setup)
    return Fig9Result(variants)


# ---------------------------------------------------------------------------
# Figure 10 — colsum
# ---------------------------------------------------------------------------

@dataclass
class Fig10Result:
    normal: RunResult
    deoptless: RunResult
    stable_speedup: float

    def report(self) -> str:
        from .harness import format_series_table

        return (
            "Figure 10: column-wise sum, per-column times of f\n"
            + format_series_table([self.normal, self.deoptless])
            + "\nstable-iteration speedup: %.1fx" % self.stable_speedup
        )


def fig10_colsum(scale: str = "test", iterations_per_phase: int = 4) -> Fig10Result:
    """Times individual calls of ``f``: warmup on integer columns, then a
    float column appears (paper: at iteration 5), then alternation."""
    from .programs.paper_examples import COLSUM_SOURCE

    w = REGISTRY.get("colsum")
    rows = _n(w, scale)
    setup = """
rows <- %dL
int_col <- integer(rows); for (ri in 1:rows) int_col[[ri]] <- ri
dbl_col <- numeric(rows); for (ri in 1:rows) dbl_col[[ri]] <- ri * 0.5
tbl <- list(int_col, dbl_col)
cols <- 2L
""" % rows
    phases = [
        Phase("int", "", "f(1L, tbl)", iterations_per_phase),
        Phase("float", "", "f(2L, tbl)", iterations_per_phase),
        Phase("int2", "", "f(1L, tbl)", iterations_per_phase),
        Phase("float2", "", "f(2L, tbl)", iterations_per_phase),
    ]
    normal, deoptless = compare_phases(COLSUM_SOURCE, phases, global_setup=setup)
    stable_n = min(normal.stable_time("int2"), normal.stable_time("float2"))
    stable_d = min(deoptless.stable_time("int2"), deoptless.stable_time("float2"))
    worst_n = max(normal.stable_time("int2"), normal.stable_time("float2"))
    speedup = worst_n / max(stable_d, 1e-12)
    return Fig10Result(normal, deoptless, speedup)


# ---------------------------------------------------------------------------
# Figure 11 — versus profile-driven reoptimization
# ---------------------------------------------------------------------------

#: speedups reported by the reoptimization paper [14], for the report table
REOPT_PAPER_SPEEDUPS = {"microbenchmark": 1.2, "rsa": 1.4, "shared function": 1.5}


@dataclass
class Fig11Row:
    name: str
    deoptless_speedup: float
    reopt_paper_speedup: float
    deopts_normal: int


@dataclass
class Fig11Result:
    rows: List[Fig11Row]

    def report(self) -> str:
        lines = [
            "Figure 11: deoptless vs profile-driven reoptimization [14]",
            "%-18s %18s %24s %8s" % ("benchmark", "deoptless speedup", "reopt paper (best case)", "deopts"),
        ]
        for r in self.rows:
            lines.append("%-18s %17.2fx %23.2fx %8d" % (
                r.name, r.deoptless_speedup, r.reopt_paper_speedup, r.deopts_normal))
        return "\n".join(lines)


def fig11_reopt(scale: str = "test", iterations: int = 6) -> Fig11Result:
    rows = []

    # (1) stale type-feedback microbenchmark: warmup alternates types so the
    # kernel compiles generically; the long phase is then double-only.  No
    # deopt accompanies the phase change -> deoptless cannot improve it.
    w = REGISTRY.get("reopt_stale_feedback")
    n = _n(w, scale)
    phases = [
        # one int call then one dbl call per iteration: the kernel's feedback
        # is polymorphic before it is first compiled, so the later phase
        # change is NOT accompanied by a deopt (the [14] scenario)
        Phase("mixed", "", "stale_run(sf_int, sf_n, 2L, 1L) + stale_run(sf_dbl, sf_n, 2.0, 1L)", 3),
        Phase("stable", "", "stale_run(sf_dbl, sf_n, 2.0, 4L)", iterations),
    ]
    normal, deoptless = compare_phases(w.source, phases, global_setup=w.setup_code(n))
    rows.append(Fig11Row(
        "microbenchmark",
        normal.stable_time("stable") / max(deoptless.stable_time("stable"), 1e-12),
        REOPT_PAPER_SPEEDUPS["microbenchmark"],
        normal.total_deopts(),
    ))

    # (2) RSA: the key parameter changes int -> double, triggering a deopt.
    w = REGISTRY.get("reopt_rsa")
    n = _n(w, scale)
    phases = [
        Phase("int_key", "", "rsa_run(rsa_msgs, rsa_n, rsa_key_int, rsa_mod, 1L)", 4),
        Phase("dbl_key", "", "rsa_run(rsa_msgs, rsa_n, rsa_key_dbl, rsa_mod, 1L)", iterations),
    ]
    normal, deoptless = compare_phases(w.source, phases, global_setup=w.setup_code(n))
    rows.append(Fig11Row(
        "rsa",
        normal.stable_time("dbl_key") / max(deoptless.stable_time("dbl_key"), 1e-12),
        REOPT_PAPER_SPEEDUPS["rsa"],
        normal.total_deopts(),
    ))

    # (3) shared function: both callers alternate throughout; feedback is
    # merged from the start, nothing ever deopts -> deoptless neutral.
    w = REGISTRY.get("reopt_shared_function")
    n = _n(w, scale)
    phases = [
        Phase("mixed", "", "shared_run(sh_int, sh_dbl, sh_n, 1L)", 3 + iterations),
    ]
    normal, deoptless = compare_phases(w.source, phases, global_setup=w.setup_code(n))
    rows.append(Fig11Row(
        "shared function",
        normal.stable_time("mixed", skip=3) / max(deoptless.stable_time("mixed", skip=3), 1e-12),
        REOPT_PAPER_SPEEDUPS["shared function"],
        normal.total_deopts(),
    ))
    return Fig11Result(rows)


# ---------------------------------------------------------------------------
# Section 5.1 — memory usage
# ---------------------------------------------------------------------------

@dataclass
class MemRow:
    name: str
    ratio: float  # deoptless / normal memory proxy


@dataclass
class MemResult:
    rows: List[MemRow]

    def median_change_pct(self) -> float:
        rs = sorted(r.ratio for r in self.rows)
        med = rs[len(rs) // 2]
        return (med - 1.0) * 100.0

    def report(self) -> str:
        lines = ["Section 5.1 memory usage (deoptless / normal, proxy = allocations + code)"]
        for r in self.rows:
            lines.append("%-16s %8.3f" % (r.name, r.ratio))
        lines.append("median change: %+.1f%%" % self.median_change_pct())
        return "\n".join(lines)


def memory_usage(scale: str = "test", **kw) -> MemResult:
    fig6 = fig6_misspeculation(scale=scale, **kw)
    return MemResult([
        MemRow(r.name, r.mem_deoptless / r.mem_normal if r.mem_normal else float("nan"))
        for r in fig6.rows
    ])
