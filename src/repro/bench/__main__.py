"""Regenerate the paper's evaluation from the command line.

    python -m repro.bench                     # everything, test scale
    python -m repro.bench --scale full        # paper-sized runs (minutes)
    python -m repro.bench --only fig4,fig10   # a subset

Prints the same tables the figures in the paper plot; see EXPERIMENTS.md
for the paper-vs-measured record.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import figures as F

#: figure id -> (description, runner)
RUNNERS = {
    "fig4": ("sum() over int/float/complex/float phases",
             lambda scale: F.fig4_sum_phases(scale=scale).report()),
    "fig6": ("speedup under randomly failing assumptions",
             lambda scale: F.fig6_misspeculation(
                 scale=scale,
                 chaos_rate=1e-4 if scale == "full" else 1e-3,
                 iterations=30 if scale == "full" else 10,
                 warmup=5 if scale == "full" else 2,
             ).report()),
    "mem": ("section 5.1 memory usage",
            lambda scale: F.memory_usage(
                scale=scale,
                chaos_rate=1e-4 if scale == "full" else 1e-3,
                iterations=30 if scale == "full" else 10,
                warmup=5 if scale == "full" else 2,
            ).report()),
    "fig8": ("volcano app interactive session",
             lambda scale: F.fig8_volcano_app(scale=scale).report()),
    "fig9": ("ray tracings with deoptimization at iteration 5",
             lambda scale: F.fig9_raytracer_phases(scale=scale).report()),
    "fig10": ("column-wise sum over a table",
              lambda scale: F.fig10_colsum(scale=scale).report()),
    "fig11": ("versus profile-driven reoptimization",
              lambda scale: F.fig11_reopt(scale=scale).report()),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="regenerate the Deoptless paper's evaluation",
    )
    parser.add_argument("--scale", choices=("test", "full"), default="test")
    parser.add_argument(
        "--only", default=None,
        help="comma-separated subset of: %s" % ",".join(RUNNERS),
    )
    args = parser.parse_args(argv)

    selected = list(RUNNERS) if args.only is None else args.only.split(",")
    unknown = [s for s in selected if s not in RUNNERS]
    if unknown:
        parser.error("unknown figure ids: %s" % ", ".join(unknown))

    for fid in selected:
        desc, runner = RUNNERS[fid]
        print("=" * 72)
        print("%s — %s (scale=%s)" % (fid, desc, args.scale))
        print("=" * 72)
        t0 = time.time()
        print(runner(args.scale))
        print("[%s took %.1fs]\n" % (fid, time.time() - t0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
