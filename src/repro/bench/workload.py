"""Workload descriptions for the evaluation harness.

A :class:`Workload` bundles the mini-R source of a benchmark, its setup
code, the expression to time per iteration, and a scaling knob so tests can
run the same programs at a fraction of the benchmark size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional


@dataclass
class Workload:
    #: short identifier (used in reports, matches the paper's names)
    name: str
    #: mini-R source defining the benchmark's functions (evaluated once)
    source: str
    #: mini-R setup statement(s); may use {n} for the scale parameter
    setup: str
    #: mini-R expression evaluated per timed iteration; may use {n}
    call: str
    #: default problem size
    n: int
    #: problem size for quick test runs
    n_test: int
    #: optional function from (result, vm) -> value used to sanity-check runs
    check: Optional[Callable] = None
    notes: str = ""

    def setup_code(self, n: Optional[int] = None) -> str:
        return self.setup.format(n=n if n is not None else self.n)

    def call_code(self, n: Optional[int] = None) -> str:
        return self.call.format(n=n if n is not None else self.n)


class Registry:
    def __init__(self) -> None:
        self._workloads: Dict[str, Workload] = {}

    def add(self, w: Workload) -> Workload:
        if w.name in self._workloads:
            raise ValueError("duplicate workload %r" % w.name)
        self._workloads[w.name] = w
        return w

    def get(self, name: str) -> Workload:
        return self._workloads[name]

    def names(self):
        return sorted(self._workloads)

    def all(self):
        return [self._workloads[k] for k in self.names()]


#: the global registry; populated by the modules in bench.programs
REGISTRY = Registry()
