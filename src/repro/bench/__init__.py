"""Evaluation substrate: workloads, the phase harness, and one driver per
paper table/figure (see :mod:`repro.bench.figures`)."""

from .harness import Phase, RunResult, compare_phases, geomean, run_phases
from .workload import REGISTRY, Workload

__all__ = [
    "Phase", "REGISTRY", "RunResult", "Workload", "compare_phases",
    "geomean", "run_phases",
]
