"""Convenience conversions between Python and mini-R values.

The public API (``RVM.call``, benchmark harnesses, tests) moves values
across the boundary with :func:`to_r` / :func:`from_r`.
"""

from __future__ import annotations

from typing import Any, List

from .runtime.rtypes import Kind
from .runtime.values import NULL, RNull, RVector


def to_r(value: Any) -> Any:
    """Convert a Python value to a mini-R runtime value.

    bool/int/float/complex/str become scalars; homogeneous lists become
    vectors; None becomes NULL; runtime values pass through.
    """
    if value is None:
        return NULL
    if isinstance(value, (RVector, RNull)):
        return value
    if isinstance(value, bool):
        return RVector(Kind.LGL, [value])
    if isinstance(value, int):
        return RVector(Kind.INT, [value])
    if isinstance(value, float):
        return RVector(Kind.DBL, [value])
    if isinstance(value, complex):
        return RVector(Kind.CPLX, [value])
    if isinstance(value, str):
        return RVector(Kind.STR, [value])
    if isinstance(value, (list, tuple)):
        return _seq_to_r(list(value))
    raise TypeError("cannot convert %r to a mini-R value" % (value,))


def _seq_to_r(items: List[Any]) -> RVector:
    if not items:
        return RVector(Kind.LGL, [])
    if all(isinstance(x, bool) for x in items):
        return RVector(Kind.LGL, items)
    if all(isinstance(x, int) and not isinstance(x, bool) for x in items):
        return RVector(Kind.INT, items)
    if all(isinstance(x, (int, float)) and not isinstance(x, bool) for x in items):
        return RVector(Kind.DBL, [float(x) for x in items])
    if all(isinstance(x, (int, float, complex)) and not isinstance(x, bool) for x in items):
        return RVector(Kind.CPLX, [complex(x) for x in items])
    if all(isinstance(x, str) for x in items):
        return RVector(Kind.STR, items)
    return RVector(Kind.LIST, [to_r(x) for x in items])


def from_r(value: Any) -> Any:
    """Convert a mini-R runtime value back to plain Python.

    Scalars unwrap to Python scalars; vectors become lists; NULL becomes
    None.  NA elements are returned as None.
    """
    if isinstance(value, RNull):
        return None
    if isinstance(value, RVector):
        if value.kind == Kind.LIST:
            return [from_r(x) for x in value.data]
        if len(value.data) == 1:
            return value.data[0]
        return list(value.data)
    return value
