"""Global environment escape analysis (the "mixed env mode" front end).

Today the builder is all-or-nothing: one ``MK_CLOSURE``/``MK_PROMISE``
anywhere in a function forces *every* local through a materialized
``REnvironment`` (env mode), because a capture might observe or mutate any
binding.  This pass replaces the binary verdict with a per-name partition,
mirroring how Ř/PIR's scope resolution + escape analysis feed its
environment elision:

* **scalar** names never reach any live capture: they stay SSA registers
  exactly as in env-elided code (unboxed loops, no env traffic).
* **env** names are referenced by at least one live capture (or may be
  read before they are certainly assigned); they live in a *partial*
  environment — a fresh ``MkEnv`` holding only those names, parented by
  the closure environment so the lexical chain stays intact.
* **harmless** capture sites reference none of our bindings at all; the
  closure/promise is created with the *caller-visible* parent environment
  (``env = None`` → ``closure_env``) and our frame is skipped entirely.
* **elided** promise sites have a statically provable unique, effect-free
  force: the argument thunk is evaluated eagerly at the creation site and
  no promise is allocated.  The consuming call's frame states remember the
  thunk so deoptimization can rematerialize an (already forced) promise.
* capture sites that are only reachable through a *cold-cut* branch edge
  do not constrain the partition at all; the cut's ``Assume`` is retagged
  ``DeoptReasonKind.ENV_CAPTURE`` — it literally is the "environment does
  not get captured" speculation, and a deopt there re-executes the branch
  against the environment rematerialized from the frame state.

The analysis is *whole-code* (every pc, not just the reachable-from-entry
slice) for the same reason the old binary check is: continuations entering
mid-function must not elide an environment that escaped earlier
(section 4.2 of the paper).  Mixed mode therefore only applies to
whole-function units (``entry_pc == 0``, not a continuation); everything
else keeps classic env mode.

Import layering: this module imports from ``ir.builder`` (feedback
helpers, cut constants); the builder imports ``analyze_escape`` lazily
inside ``GraphBuilder.__init__`` to avoid the package cycle through
``opt/__init__``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..bytecode import opcodes as O
from ..bytecode.feedback import BranchFeedback, CallFeedback
from ..ir.builder import (
    COLD_BRANCH_MIN_COUNT,
    _site_blocked,
    loop_exit,
    usable_call_target,
)
from ..runtime.values import RBuiltin, RClosure


class EscapeInfo:
    """Result of :func:`analyze_escape` for one compilation unit.

    ``verdict`` is one of:

    * ``"scalar"`` — no name needs the environment: full elision.
    * ``"mixed"``  — ``env_names`` live in a partial ``MkEnv``; the rest
      are registers.
    * ``"env"``    — analysis declined (continuation entry, non-constant
      defaults, …); the builder keeps classic env mode.  ``blocked``
      carries the reason for the inspector.
    """

    __slots__ = (
        "verdict",
        "blocked",
        "env_names",
        "demote_reasons",
        "harmless",
        "elided",
        "cold_cuts",
        "capture_guard_pcs",
        "guards_emitted",
        "promises_elided",
    )

    def __init__(self, verdict: str, blocked: Optional[str] = None):
        self.verdict = verdict
        self.blocked = blocked
        #: names that must live in the partial environment
        self.env_names: FrozenSet[str] = frozenset()
        #: name -> human-readable reason it was demoted (inspector panel)
        self.demote_reasons: Dict[str, str] = {}
        #: MK pcs whose capture references none of our bindings
        self.harmless: FrozenSet[int] = frozenset()
        #: MK_PROMISE pc -> thunk CodeObject for provably elidable promises
        self.elided: Dict[int, object] = {}
        #: branch pc -> (live_pc, dead_pc): the cold cuts the builder must
        #: apply (decided here so analysis and translation cannot diverge)
        self.cold_cuts: Dict[int, Tuple[int, int]] = {}
        #: cut branch pcs whose dead edge hides a capture site — their
        #: Assume is the env-not-captured speculation
        self.capture_guard_pcs: FrozenSet[int] = frozenset()
        #: filled during translation (builder) for telemetry
        self.guards_emitted = 0
        self.promises_elided = 0

    @property
    def usable(self) -> bool:
        return self.verdict in ("scalar", "mixed")

    def blocking_summary(self) -> str:
        """One line for the verdict log / inspector."""
        if self.verdict == "env":
            return self.blocked or ""
        if not self.env_names:
            return ""
        return "; ".join(
            "%s: %s" % (n, self.demote_reasons.get(n, "?"))
            for n in sorted(self.env_names)
        )


# ---------------------------------------------------------------------------
# bytecode-level CFG helpers (pc granularity; these codes are tiny)
# ---------------------------------------------------------------------------

def _succs(code, pc: int, cuts: Optional[Dict[int, Tuple[int, int]]]) -> List[int]:
    ins = code.code[pc]
    op = ins[0]
    if op == O.RETURN:
        return []
    if op == O.BR:
        return [ins[1]]
    if op in (O.BRFALSE, O.BRTRUE):
        if cuts is not None and pc in cuts:
            return [cuts[pc][0]]
        return [pc + 1, ins[1]]
    return [pc + 1]


def _reachable(code, start: int, cuts: Optional[Dict[int, Tuple[int, int]]]) -> Set[int]:
    seen: Set[int] = set()
    work = [start]
    n = len(code.code)
    while work:
        pc = work.pop()
        if pc in seen or pc >= n:
            continue
        seen.add(pc)
        work.extend(_succs(code, pc, cuts))
    return seen


def cold_cuts(config, code, feedback) -> Dict[int, Tuple[int, int]]:
    """Replicate the builder's cold-branch speculation rule exactly.

    Returns branch pc -> (live_pc, dead_pc).  The builder consumes this map
    verbatim when escape analysis ran, so a capture site the analysis
    discarded as cut-unreachable can never come back during translation.
    """
    cuts: Dict[int, Tuple[int, int]] = {}
    if not config.enable_cold_branch_speculation:
        return cuts
    for pc, ins in enumerate(code.code):
        if ins[0] not in (O.BRFALSE, O.BRTRUE):
            continue
        fb = feedback.get(pc)
        if not isinstance(fb, BranchFeedback) or _site_blocked(code, pc):
            continue
        bias = fb.bias
        count = fb.taken + fb.not_taken
        if bias is None or count < COLD_BRANCH_MIN_COUNT or loop_exit(code, pc):
            continue
        is_brfalse = ins[0] == O.BRFALSE
        taken_pc, fall_pc = ins[1], pc + 1
        live = (taken_pc if not is_brfalse else fall_pc) if bias else (
            fall_pc if not is_brfalse else taken_pc)
        dead = fall_pc if live == taken_pc else taken_pc
        cuts[pc] = (live, dead)
    return cuts


# ---------------------------------------------------------------------------
# capture reference walk
# ---------------------------------------------------------------------------

def _walk_capture(code, refs: Set[str], writes: Set[str],
                  load_shield: FrozenSet[str], super_shield: FrozenSet[str],
                  same_frame: bool) -> None:
    """Collect names a capture may resolve in *our* frame.

    ``same_frame`` is True for promise thunks (they execute with our
    environment): every load hits our frame directly and every ``ST_VAR``
    *writes* it.  Closure bodies run in child frames: loads are shielded by
    the formals of every frame between the load and us (formals only —
    a child-local ``ST_VAR`` must not shield, the load may precede the
    store), and ``<<-`` starts at the storer's parent, so its shield
    excludes the storer's own formals.
    """
    for ins in code.code:
        op = ins[0]
        if op in (O.LD_VAR, O.LD_FUN):
            n = code.names[ins[1]]
            if same_frame or n not in load_shield:
                refs.add(n)
        elif op == O.ST_VAR:
            if same_frame:
                n = code.names[ins[1]]
                refs.add(n)
                writes.add(n)
        elif op == O.ST_VAR_SUPER:
            # from our own frame, <<- starts at our *parent* and skips us
            if not same_frame:
                n = code.names[ins[1]]
                if n not in super_shield:
                    refs.add(n)
                    writes.add(n)
        elif op == O.MK_CLOSURE:
            sub_code, sub_formals, _fname = code.consts[ins[1]]
            fnames = frozenset(f[0] for f in sub_formals)
            child_load = (fnames if same_frame else load_shield | fnames)
            child_super = frozenset() if same_frame else load_shield
            _walk_capture(sub_code, refs, writes, child_load, child_super, False)
            for _f, default in sub_formals:
                if default is not None:
                    _walk_capture(default, refs, writes, child_load, child_super, False)
        elif op == O.MK_PROMISE:
            # a promise made here runs in the *same* frame as its maker
            _walk_capture(code.consts[ins[1]], refs, writes,
                          load_shield, super_shield, same_frame)


def capture_refs(code, mk_pc: int) -> Tuple[Set[str], Set[str]]:
    """(names read/written in our frame, names written into our frame)."""
    ins = code.code[mk_pc]
    refs: Set[str] = set()
    writes: Set[str] = set()
    if ins[0] == O.MK_CLOSURE:
        sub_code, sub_formals, _fname = code.consts[ins[1]]
        fnames = frozenset(f[0] for f in sub_formals)
        _walk_capture(sub_code, refs, writes, fnames, frozenset(), False)
        for _f, default in sub_formals:
            if default is not None:
                _walk_capture(default, refs, writes, fnames, frozenset(), False)
    else:
        _walk_capture(code.consts[ins[1]], refs, writes,
                      frozenset(), frozenset(), True)
    return refs, writes


# ---------------------------------------------------------------------------
# promise elision proof
# ---------------------------------------------------------------------------

#: straight-line thunk bodies may only use these (note: no stores, no
#: captures — the thunk must be re-runnable at the MK site without any
#: observable effect)
_THUNK_OPS = frozenset({
    O.PUSH_CONST, O.PUSH_NULL, O.LD_VAR, O.LD_FUN, O.BINOP, O.COMPARE,
    O.LOGIC, O.UNOP, O.COLON, O.INDEX2, O.INDEX1, O.SEQ_LENGTH,
    O.CHECK_FUN, O.DUP, O.POP, O.ROT3, O.CALL, O.RETURN,
})

#: ops that may appear between the MK_PROMISE and its consuming CALL —
#: pushes of the remaining arguments.  Stores are excluded (the thunk reads
#: our registers *now*; a store in between would be observed by the real
#: force but not by the eager evaluation); nested CALLs are checked
#: separately (pure builtins only).
_BETWEEN_OPS = frozenset({
    O.PUSH_CONST, O.PUSH_NULL, O.LD_VAR, O.LD_FUN, O.BINOP, O.COMPARE,
    O.LOGIC, O.UNOP, O.COLON, O.INDEX2, O.INDEX1, O.SEQ_LENGTH,
    O.CHECK_FUN, O.MK_PROMISE, O.MK_CLOSURE, O.CALL,
})

#: a called-from-thunk closure body must avoid anything frame-external;
#: ST_VAR and branches are fine (callee-frame local)
_CALLEE_BLACKLIST = frozenset({
    O.ST_VAR_SUPER, O.MK_CLOSURE, O.MK_PROMISE, O.SET_INDEX1, O.SET_INDEX2,
})

#: stack effect (pops, pushes) for the ops the consumer scan simulates
_STACK_FX = {
    O.PUSH_CONST: (0, 1), O.PUSH_NULL: (0, 1), O.LD_VAR: (0, 1),
    O.LD_FUN: (0, 1), O.BINOP: (2, 1), O.COMPARE: (2, 1), O.LOGIC: (2, 1),
    O.UNOP: (1, 1), O.COLON: (2, 1), O.INDEX2: (2, 1), O.INDEX1: (2, 1),
    O.SEQ_LENGTH: (1, 1), O.MK_PROMISE: (0, 1), O.MK_CLOSURE: (0, 1),
}


def _code_effect_free(code) -> bool:
    """One-level purity for closures called from a thunk: no escaping
    stores, no captures, and internal calls only to monomorphic pure
    builtins (no deeper closure nesting — one level keeps the proof
    finite)."""
    for pc, ins in enumerate(code.code):
        op = ins[0]
        if op in _CALLEE_BLACKLIST:
            return False
        if op == O.CALL:
            target = usable_call_target(code, pc, code.feedback.get(pc))
            if not (isinstance(target, RBuiltin) and target.pure):
                return False
    return True


def _thunk_effect_free(thunk) -> bool:
    """Is this promise body re-runnable anywhere without observable effect?
    Straight-line, whitelisted ops, and every call target proven pure
    (monomorphic pure builtin, or one-level effect-free user closure)."""
    for pc, ins in enumerate(thunk.code):
        op = ins[0]
        if op in (O.BR, O.BRFALSE, O.BRTRUE):
            return False
        if op not in _THUNK_OPS:
            return False
        if op == O.CALL:
            target = usable_call_target(thunk, pc, thunk.feedback.get(pc))
            if target is None:
                return False
            if isinstance(target, RBuiltin):
                if not target.pure:
                    return False
            elif isinstance(target, RClosure):
                if not _code_effect_free(target.code):
                    return False
            else:
                return False
    return True


def _find_consumer(code, mk_pc: int, feedback) -> Optional[Tuple[int, int]]:
    """Find the CALL that consumes the promise made at ``mk_pc``.

    Simulates stack depth forward from the MK site; bails on anything that
    is not a plain push-the-remaining-arguments sequence.  Returns
    (call_pc, arg_index) or None.
    """
    depth = 0  # values above our promise
    pc = mk_pc + 1
    n = len(code.code)
    while pc < n:
        ins = code.code[pc]
        op = ins[0]
        if op == O.CALL:
            nargs = ins[1]
            if depth >= nargs + 1:
                # a nested call entirely above our promise: only pure
                # builtins may run between creation and the eager force
                target = usable_call_target(code, pc, feedback.get(pc))
                if not (isinstance(target, RBuiltin) and target.pure):
                    return None
                depth -= nargs  # pops nargs+1, pushes result
                pc += 1
                continue
            if depth == nargs:
                return None  # our promise would be the callee — not an arg
            return (pc, nargs - 1 - depth)
        if op not in _BETWEEN_OPS:
            return None
        pops, pushes = _STACK_FX[op]
        if op == O.CHECK_FUN and ins[1] == "callable":
            pops, pushes = (0, 0)
        if pops > depth:
            return None  # dips into/below our promise
        depth += pushes - pops
        pc += 1
    return None


def _certain_force(code, call_pc: int, arg_index: int, feedback) -> bool:
    """Will the consuming call certainly force argument ``arg_index``
    exactly where a function entry would?  Builtins force all arguments
    immediately; a closure qualifies when its body opens with a transparent
    prefix (constant/variable shuffling only) that loads the formal."""
    ins = code.code[call_pc]
    if ins[2] >= 0:
        return False  # named arguments reorder the match
    target = usable_call_target(code, call_pc, feedback.get(call_pc))
    if target is None:
        return False
    if isinstance(target, RBuiltin):
        return True
    if not isinstance(target, RClosure):
        return False
    if ins[1] > len(target.formals):
        return False
    fname = target.formals[arg_index][0]
    transparent = (O.PUSH_CONST, O.PUSH_NULL, O.LD_VAR, O.ST_VAR, O.DUP, O.POP)
    for tins in target.code.code:
        if tins[0] == O.LD_VAR and target.code.names[tins[1]] == fname:
            return True
        if tins[0] not in transparent:
            return False
    return False


# ---------------------------------------------------------------------------
# maybe-unassigned demotion
# ---------------------------------------------------------------------------

def _must_assigned(code, formals: Set[str]) -> Dict[int, Set[str]]:
    """pc -> names certainly assigned on every path *before* executing pc.

    Full bytecode graph (no cold cuts): the builder's type analysis walks
    every bc-reachable block, so parity requires the uncut graph here.
    """
    n = len(code.code)
    assigned_in: Dict[int, Set[str]] = {0: set(formals)}
    work = [0]
    while work:
        pc = work.pop()
        cur = assigned_in[pc]
        out = cur | {code.names[code.code[pc][1]]} \
            if code.code[pc][0] == O.ST_VAR else cur
        for s in _succs(code, pc, None):
            if s >= n:
                continue
            if s not in assigned_in:
                assigned_in[s] = set(out)
                work.append(s)
            else:
                merged = assigned_in[s] & out
                if merged != assigned_in[s]:
                    assigned_in[s] = merged
                    work.append(s)
    return assigned_in


def _maybe_unassigned(code, assigned_in: Dict[int, Set[str]],
                      locals_: Set[str]) -> Set[str]:
    """Local names with a load that is not dominated by an assignment.

    Scalar translation would refuse the unit ("may be read before
    assignment"); demoting the name to the partial environment preserves
    the interpreter's dynamic object-not-found error instead.
    """
    demote: Set[str] = set()
    for pc, have in assigned_in.items():
        op = code.code[pc][0]
        if op in (O.LD_VAR, O.LD_FUN):
            name = code.names[code.code[pc][1]]
            if name in locals_ and name not in have:
                demote.add(name)
    return demote


def _thunk_load_names(thunk) -> Set[str]:
    """Names an (elidable, straight-line) thunk loads from our frame."""
    return {
        thunk.names[ins[1]]
        for ins in thunk.code
        if ins[0] in (O.LD_VAR, O.LD_FUN)
    }


# ---------------------------------------------------------------------------
# the analysis
# ---------------------------------------------------------------------------

def analyze_escape(config, code, closure, feedback) -> EscapeInfo:
    """Partition one function's locals; see the module docstring.

    ``feedback`` is the builder's (possibly deoptless-repaired) feedback
    map — decisions here must match what translation will see.
    """
    formals = {f[0] for f in closure.formals} if closure is not None else set()
    locals_ = set(formals)
    for ins in code.code:
        if ins[0] == O.ST_VAR:
            locals_.add(code.names[ins[1]])

    cuts = cold_cuts(config, code, feedback)
    assigned_in = _must_assigned(code, formals)
    live_pcs = _reachable(code, 0, cuts)
    mk_pcs = [pc for pc in range(len(code.code))
              if code.code[pc][0] in (O.MK_CLOSURE, O.MK_PROMISE)]
    live_mks = [pc for pc in mk_pcs if pc in live_pcs]

    # cut branches whose dead edge leads to a cut-away capture: these are
    # the env-not-captured speculations (over-tagging a branch that also
    # hides non-capture code is fine — the reason kind is diagnostic)
    guard_pcs: Set[int] = set()
    cut_mks = set(mk_pcs) - set(live_mks)
    if cut_mks:
        for bpc, (_live, dead) in cuts.items():
            if cut_mks & _reachable(code, dead, None):
                guard_pcs.add(bpc)

    # classify each live capture site
    site_refs: Dict[int, Set[str]] = {}
    site_writes: Dict[int, Set[str]] = {}
    all_writes: Set[str] = set()
    for pc in live_mks:
        refs, writes = capture_refs(code, pc)
        site_refs[pc] = refs
        site_writes[pc] = writes
        all_writes |= writes
    # names a same-frame thunk may *create* in our frame behave like
    # locals: a later free-variable load must be able to see them
    eff_locals = locals_ | all_writes

    harmless: Set[int] = set()
    elided: Dict[int, object] = {}
    env_names: Set[str] = set()
    reasons: Dict[str, str] = {}

    for pc in live_mks:
        touched = (site_refs[pc] & eff_locals) | site_writes[pc]
        if not touched:
            harmless.add(pc)
            continue
        if code.code[pc][0] == O.MK_PROMISE and not _site_blocked(code, pc):
            thunk = code.consts[code.code[pc][1]]
            # eager evaluation reads our scalar registers at the MK site:
            # every local the thunk loads must be certainly assigned there
            # (an unassigned local would silently resolve as a free lookup
            # instead of raising the interpreter's object-not-found error)
            loads_ok = (
                _thunk_load_names(thunk) & locals_
            ) <= assigned_in.get(pc, set())
            if loads_ok and _thunk_effect_free(thunk):
                consumer = _find_consumer(code, pc, feedback)
                if consumer is not None:
                    q, j = consumer
                    # every sibling promise of the same call must be
                    # effect-free too, or eager evaluation reorders
                    # observable work
                    siblings_ok = all(
                        _thunk_effect_free(code.consts[code.code[p2][1]])
                        for p2 in live_mks
                        if p2 != pc and code.code[p2][0] == O.MK_PROMISE
                        and _find_consumer(code, p2, feedback) is not None
                        and _find_consumer(code, p2, feedback)[0] == q
                    )
                    if siblings_ok and _certain_force(code, q, j, feedback):
                        elided[pc] = thunk
                        continue
        for n in sorted(touched):
            if n not in env_names:
                env_names.add(n)
                kind = "closure" if code.code[pc][0] == O.MK_CLOSURE else "promise"
                reasons[n] = "captured by %s at pc %d" % (kind, pc)

    for n in sorted(_maybe_unassigned(code, assigned_in, locals_)):
        if n not in env_names:
            env_names.add(n)
            reasons[n] = "may be read before assignment"

    info = EscapeInfo("scalar" if not env_names else "mixed")
    info.env_names = frozenset(env_names)
    info.demote_reasons = reasons
    info.harmless = frozenset(harmless)
    info.elided = elided
    info.cold_cuts = cuts
    info.capture_guard_pcs = frozenset(guard_pcs)
    return info


# ---------------------------------------------------------------------------
# pipeline hook: verdict accounting
# ---------------------------------------------------------------------------

def note_escape(graph, state) -> None:
    """Record the unit's escape verdict in telemetry (outside the dispatch
    signature, like the ctx_*/vec_* families)."""
    info = graph.escape_info
    if info is None or state is None:
        return
    if info.usable:
        state.env_elided += 1
        state.promise_elided += info.promises_elided
        state.escape_guards += info.guards_emitted
    from ..jit.telemetry import dedup_log
    dedup_log(state.escape_log,
              (graph.name, info.verdict, info.blocking_summary()))
