"""The optimization pipeline.

Order: inline → simplify → DSE → DCE → simplify.  Speculative call-target
inlining runs first (it needs the raw guard+StaticCall shape the builder
emits, and the cleanup passes then optimize across the inline boundary);
it only runs when a ``vm`` is supplied, because splicing a callee requires
building its IR from feedback.  DSE is skipped for continuation graphs
unless forced (paper section 4.2 anecdote).  The pipeline is deliberately
small; the heavy lifting (speculation, unboxing, typed ops) happens during
BC→IR translation, mirroring how Ř's early PIR phases do the speculative
rewriting and later phases clean up.
"""

from __future__ import annotations

from ..ir.cfg import Graph
from ..ir.verifier import verify
from .dce import dce
from .dse import dse
from .escape import note_escape
from .inline import inline_calls
from .simplify import simplify
from .vectorize import vectorize_loops


def optimize(graph: Graph, config=None, vm=None) -> Graph:
    check = config is None or getattr(config, "verify_ir", True)
    if check:
        _verify(graph, vm)
    if vm is not None and config is not None and getattr(config, "inline", False):
        if inline_calls(graph, vm) and check:
            _verify(graph, vm)
    if vm is not None and getattr(graph, "escape_info", None) is not None:
        # accounting only (the builder already applied the verdict): one
        # place where every compiled unit's escape decision gets recorded
        note_escape(graph, vm.state)
    simplify(graph)
    force_dse = bool(config and getattr(config, "unsound_continuation_escape", False))
    dse(graph, force=force_dse)
    dce(graph)
    simplify(graph)
    dce(graph)
    # runs last: the pass only *annotates* (graph.vector_loops); it must see
    # the final cleaned shape the lowerer will consume
    vectorize_loops(graph, config, state=vm.state if vm is not None else None)
    if check:
        _verify(graph, vm)
    return graph


def _verify(graph: Graph, vm=None) -> None:
    """IR verification, counted: verification happens once per *distinct*
    cache key — a code-cache hit skips this pipeline entirely, and the
    ``ir_verifies`` counter is how tests observe that."""
    if vm is not None:
        vm.state.ir_verifies += 1
    verify(graph)
