"""The optimization pipeline.

Order: simplify → DSE → DCE → simplify.  DSE is skipped for continuation
graphs unless forced (paper section 4.2 anecdote).  The pipeline is
deliberately small; the heavy lifting (speculation, unboxing, typed ops)
happens during BC→IR translation, mirroring how Ř's early PIR phases do the
speculative rewriting and later phases clean up.
"""

from __future__ import annotations

from ..ir.cfg import Graph
from ..ir.verifier import verify
from .dce import dce
from .dse import dse
from .simplify import simplify
from .vectorize import vectorize_loops


def optimize(graph: Graph, config=None) -> Graph:
    check = config is None or getattr(config, "verify_ir", True)
    if check:
        verify(graph)
    simplify(graph)
    force_dse = bool(config and getattr(config, "unsound_continuation_escape", False))
    dse(graph, force=force_dse)
    dce(graph)
    simplify(graph)
    dce(graph)
    # runs last: the pass only *annotates* (graph.vector_loops); it must see
    # the final cleaned shape the lowerer will consume
    vectorize_loops(graph, config)
    if check:
        verify(graph)
    return graph
