"""Dead store elimination for environment stores.

Removes a ``StVarEnv`` that is overwritten by a later store to the same
variable with no intervening observer.  Observers are: loads/stores through
the env by *other* instructions that may read it (any call, LdVarEnv, LdFun,
MkClosure, MkPromise, Force) and — crucially — **any instruction carrying a
FrameState that references the environment**, because deoptimization
re-reads every binding.

Per the paper's OSR-in anecdote (section 4.2: "out of all the optimization
passes of the normal optimizer, only dead-store elimination was unsound for
OSR-in continuations"), this pass refuses to run on continuation graphs:
objects that escaped *before* the continuation's entry can observe stores
that look dead from the continuation's point of view.  A config switch on
the pass (``force``) re-enables it for the regression test that reproduces
the unsoundness.
"""

from __future__ import annotations

from ..ir import instructions as I
from ..ir.cfg import Graph


_ENV_OBSERVERS = (
    I.LdVarEnv, I.LdFun, I.MkClosure, I.MkPromise, I.Force, I.Call,
    I.CallBuiltin, I.StaticCall, I.StVarSuper, I.CheckFun, I.Return,
)


def dse(graph: Graph, force: bool = False) -> int:
    """Remove provably dead env stores; returns the number removed."""
    if graph.is_continuation and not force:
        return 0
    if graph.env_elided:
        return 0  # nothing to do: variables are SSA registers already
    removed = 0
    for bb in graph.rpo():
        # only the straight-line case: a store shadowed by a later store in
        # the same block with no observer between them
        last_store_of = {}
        kill = []
        for ins in bb.instrs:
            if isinstance(ins, I.StVarEnv):
                prev = last_store_of.get(ins.vname)
                if prev is not None:
                    kill.append(prev)
                last_store_of[ins.vname] = ins
            elif isinstance(ins, _ENV_OBSERVERS):
                last_store_of.clear()
            elif getattr(ins, "framestate", None) is not None:
                # a deopt point observes the whole environment
                last_store_of.clear()
        for ins in kill:
            bb.remove(ins)
            removed += 1
    return removed
