"""Cleanup passes: phi simplification, copy propagation, box/unbox pairs,
constant folding of primitive ops, and redundant-guard elimination.

These run after the builder and keep the lowered code tight; none of them
are speculation-specific, but all of them must preserve FrameState
references (a value that only lives in a framestate is still live).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..runtime.rtypes import Kind
from ..runtime.values import RPromise, RVector
from ..ir import instructions as I
from ..ir.cfg import Graph


def simplify(graph: Graph) -> int:
    """Run local simplifications to a fixpoint; returns rewrite count."""
    total = 0
    for _ in range(10):
        n = (
            _simplify_phis(graph)
            + _peephole(graph)
            + _dedup_guards(graph)
        )
        total += n
        if n == 0:
            break
    return total


def _simplify_phis(graph: Graph) -> int:
    """Remove phis whose inputs are all the same value (or themselves)."""
    n = 0
    for bb in graph.rpo():
        for phi in list(bb.phis()):
            inputs = {v for _, v in phi.inputs if v is not phi}
            if len(inputs) == 1:
                only = inputs.pop()
                graph.replace_all_uses(phi, only)
                bb.remove(phi)
                n += 1
    return n


def _skip_casts(v: I.Instr) -> I.Instr:
    """Look through CastType refinements (pure register copies).

    Scalar replacement's eager thunk evaluation pins results behind a
    CastType (the elided-promise marker), so the chains it leaves look like
    ``Force(CastType(Box(x)))`` — the folds below must see through them.
    """
    while isinstance(v, I.CastType):
        v = v.args[0]
    return v


def _peephole(graph: Graph) -> int:
    """Unbox(Box(x)) -> x, Box(Unbox(x)) -> x, constant-fold prim ops,
    Unbox(Const) -> unboxed const, and fold IsType on statically-typed
    values.  All the pair folds look through CastType chains."""
    n = 0
    for bb in graph.rpo():
        for ins in list(bb.instrs):
            # Force of a value that is statically not a promise is the
            # identity: a freshly Boxed scalar, an unboxed raw, or a
            # non-promise constant.  Inlined callees load every parameter
            # through Force; at an inline boundary the argument is usually
            # a Box of the caller's unboxed register, so this fold is what
            # lets the Box/IsType/Unbox chain below collapse across it.
            if isinstance(ins, I.Force):
                v = ins.args[0]
                w = _skip_casts(v)
                if (
                    isinstance(w, I.Box)
                    or w.unboxed
                    or (isinstance(w, I.Const) and not isinstance(w.value, RPromise))
                ):
                    graph.replace_all_uses(ins, v)
                    bb.remove(ins)
                    n += 1
                    continue
            # no-op CastType (no refinement, no elided-promise marker to
            # keep alive for deopt rematerialization)
            if (
                isinstance(ins, I.CastType)
                and ins.type == ins.args[0].type
                and getattr(ins, "elided_promise", None) is None
            ):
                graph.replace_all_uses(ins, ins.args[0])
                bb.remove(ins)
                n += 1
                continue
            # Unbox(Box(x)) and Box(Unbox(x))
            if isinstance(ins, I.Unbox):
                box = _skip_casts(ins.args[0])
                if isinstance(box, I.Box):
                    inner = box.args[0]
                    if inner.unboxed and inner.type.kind == ins.kind:
                        graph.replace_all_uses(ins, inner)
                        bb.remove(ins)
                        n += 1
                        continue
            if isinstance(ins, I.Box):
                unbox = _skip_casts(ins.args[0])
                if isinstance(unbox, I.Unbox):
                    inner = unbox.args[0]
                    if not inner.unboxed and inner.type.kind == ins.kind and inner.type.scalar:
                        graph.replace_all_uses(ins, inner)
                        bb.remove(ins)
                        n += 1
                        continue
            # Unbox(Const vector) -> unboxed Const
            if isinstance(ins, I.Unbox) and isinstance(ins.args[0], I.Const):
                cv = ins.args[0].value
                if isinstance(cv, RVector) and len(cv.data) == 1 and cv.data[0] is not None:
                    c = I.Const(cv.data[0], ins.type)
                    c.unboxed = True
                    bb.insert_before(ins, c)
                    graph.replace_all_uses(ins, c)
                    bb.remove(ins)
                    n += 1
                    continue
            # constant-fold unboxed primitive arithmetic/comparison
            if isinstance(ins, (I.PrimArith, I.PrimCompare)) and all(
                isinstance(a, I.Const) and a.unboxed for a in ins.args
            ):
                folded = _fold_prim(ins)
                if folded is not None:
                    bb.insert_before(ins, folded)
                    graph.replace_all_uses(ins, folded)
                    bb.remove(ins)
                    n += 1
                    continue
            # IsType on a value whose static type already satisfies the test
            if isinstance(ins, I.IsType) and ins.args[0].type <= ins.test_type:
                c = I.Const(True, ins.type)
                c.unboxed = True
                bb.insert_before(ins, c)
                graph.replace_all_uses(ins, c)
                bb.remove(ins)
                n += 1
                continue
            # Assume(const True) is a no-op guard; drop it (the paper's
            # "unsoundly dropped all deoptimization exit points" experiment
            # uses a separate switch, not this — this one is sound)
            if isinstance(ins, I.Assume):
                cond = ins.args[0]
                if isinstance(cond, I.Const) and cond.value is True:
                    bb.remove(ins)
                    n += 1
                    continue
    return n


def _fold_prim(ins) -> Optional[I.Const]:
    a = ins.args[0].value
    b = ins.args[1].value
    try:
        if isinstance(ins, I.PrimArith):
            op = ins.op
            if op == "+":
                v = a + b
            elif op == "-":
                v = a - b
            elif op == "*":
                v = a * b
            elif op == "/":
                if b == 0:
                    return None
                v = a / b
            elif op == "^":
                v = a ** b
            else:
                return None
            c = I.Const(v, ins.type)
            c.unboxed = True
            return c
        op = ins.op
        v = {
            "==": a == b, "!=": a != b, "<": a < b,
            "<=": a <= b, ">": a > b, ">=": a >= b,
        }[op]
        c = I.Const(v, ins.type)
        c.unboxed = True
        return c
    except (TypeError, OverflowError, ZeroDivisionError):
        return None


def _dedup_guards(graph: Graph) -> int:
    """Within a block, drop a second identical type guard on the same value."""
    n = 0
    for bb in graph.rpo():
        seen: Dict[tuple, I.Instr] = {}
        for ins in list(bb.instrs):
            if isinstance(ins, I.IsType):
                key = (id(ins.args[0]), ins.test_type)
                if key in seen:
                    graph.replace_all_uses(ins, seen[key])
                    bb.remove(ins)
                    n += 1
                else:
                    seen[key] = ins
        # duplicate Assumes over the same condition
        asserted = set()
        for ins in list(bb.instrs):
            if isinstance(ins, I.Assume):
                key = id(ins.args[0])
                if key in asserted:
                    bb.remove(ins)
                    n += 1
                else:
                    asserted.add(key)
    return n
