"""Speculative call-target inlining.

Call-target speculation only pays off when the optimizer can *see through*
the call: for a monomorphic ``CallFeedback`` site the builder already emits
``IsIdentical(fn, target) + Assume`` in front of a ``StaticCall``.  This
pass splices the callee's IR into the caller under that existing guard:

* arguments become direct value substitutions for the callee's ``Param``
  instructions — no boxing step, no argument matching, and no
  ``REnvironment`` allocation (only callees whose environment is
  non-escaping are inlined, so the env stays elided and the callee's locals
  live in caller registers);
* the callee's ``RETURN`` becomes a jump to the continuation block (the
  tail of the caller block, split at the call), with a phi collecting the
  return values;
* every checkpoint inside the inlined body gets a *nested*
  :class:`FrameStateDescr`: the callee frame, whose ``parent`` is the
  caller frame re-entered at the post-call pc with the callee and its
  arguments already popped.  A deopt inside the inlined body therefore
  materializes both interpreter frames exactly (see ``osr/osr_out.py``),
  and the deoptless engine can dispatch on the chained state.

Cost model (all knobs on :class:`~repro.jit.Config`, pass gated behind
``Config.inline`` / ``RERPO_INLINE``):

* callee bytecode size bounded by ``inline_max_size`` and a per-unit total
  ``inline_budget``;
* nesting bounded by ``inline_max_depth``; recursive targets (the callee's
  code already on the inline chain) are never inlined;
* no inlining of callees with escaping environments (``MK_CLOSURE`` /
  ``MK_PROMISE``), ``<<-`` assignments (their elided-env semantics start
  the search at a different env than the explicit-env form), loops (they
  are hot on their own and would interact with OSR/kernels), non-constant
  argument defaults, or named-argument call shapes.

Free-variable loads in the callee (``LdVarEnv``/``LdFun`` without an env
operand) resolve against the *callee's* lexical environment, which at an
inline site is a compile-time constant (``target.env``); they are rewritten
to the explicit-env forms over a constant.  Vector arguments get a
:class:`~repro.ir.instructions.Share` mark at the inline boundary so
copy-on-write (NAMED) behavior matches the interpreter's argument binding.
"""

from __future__ import annotations

from typing import List, Optional

from ..bytecode import opcodes as O
from ..deoptless.context import CallContext
from ..ir import instructions as I
from ..ir.builder import CompilationFailure, GraphBuilder, _const_default, env_escapes
from ..ir.cfg import Graph
from ..osr.framestate import DeoptReasonKind, FrameStateDescr
from ..runtime.rtypes import ANY, Kind, RType
from ..runtime.values import NULL, RClosure, rtype_quick

_ENV_T = RType(Kind.ENV, scalar=True, maybe_na=False)
_MISSING = object()


def _has_loop(code) -> bool:
    for i, ins in enumerate(code.code):
        if ins[0] in (O.BR, O.BRFALSE, O.BRTRUE) and ins[1] <= i:
            return True
    return False


def _default_values(target: RClosure) -> Optional[list]:
    """Constant default values per formal (``_MISSING`` where there is no
    default), or None when any default is a non-constant thunk."""
    out = []
    for _, default in target.formals:
        if default is None:
            out.append(_MISSING)
        elif _const_default(default):
            ins0 = default.code[0]
            out.append(NULL if ins0[0] == O.PUSH_NULL else default.consts[ins0[1]])
        else:
            return None
    return out


def _chain_depth(fs: FrameStateDescr) -> int:
    d = 1
    while fs.parent is not None:
        d += 1
        fs = fs.parent
    return d


def _chain_codes(fs: Optional[FrameStateDescr]) -> list:
    codes = []
    while fs is not None:
        codes.append(fs.code)
        fs = fs.parent
    return codes


def _copy_chain(fs: Optional[FrameStateDescr]) -> Optional[FrameStateDescr]:
    if fs is None:
        return None
    return FrameStateDescr(
        fs.code, fs.pc, list(fs.env_slots), list(fs.stack),
        env_value=fs.env_value, parent=_copy_chain(fs.parent), fun=fs.fun,
    )


def inline_calls(graph: Graph, vm) -> int:
    """Inline speculated (guarded) calls into ``graph``; returns the number
    of callee frames spliced.  Iterates to a fixpoint so calls inside
    inlined bodies are considered too (bounded by depth/budget)."""
    config = vm.config
    spent = 0
    inlined = 0
    worklist: List[I.StaticCall] = [
        ins for bb in graph.blocks for ins in bb.instrs if isinstance(ins, I.StaticCall)
    ]
    while worklist:
        call = worklist.pop(0)
        if call.block is None:  # removed by an earlier splice
            continue
        res = _try_inline(graph, vm, call, config.inline_budget - spent)
        if res is None:
            continue
        n_ops, new_calls = res
        spent += n_ops
        inlined += 1
        worklist.extend(new_calls)
    if inlined:
        vm.state.inlined_frames += inlined
        graph.inlined_frames += inlined
    return inlined


def _try_inline(graph: Graph, vm, call: I.StaticCall, budget_left: int):
    config = vm.config
    target = call.closure
    if not isinstance(target, RClosure):
        return None
    names = call.call_names
    if names is not None and any(n is not None for n in names):
        return None  # named-argument shapes keep the guarded-call path
    bb = call.block
    idx = bb.instrs.index(call)
    if idx < 2:
        return None
    assume = bb.instrs[idx - 1]
    test = bb.instrs[idx - 2]
    if not (
        isinstance(assume, I.Assume)
        and assume.reason_kind is DeoptReasonKind.CALL_TARGET
        and isinstance(test, I.IsIdentical)
    ):
        return None
    guard_fs = assume.framestate
    if _chain_depth(guard_fs) > config.inline_max_depth:
        return None
    code = target.code
    if code is graph.bc_code or code in _chain_codes(guard_fs):
        return None  # recursive: the callee is already on the inline chain
    n_ops = len(code.code)
    if n_ops > config.inline_max_size or n_ops > budget_left:
        return None
    if env_escapes(code) or _has_loop(code):
        return None
    if any(ins[0] == O.ST_VAR_SUPER for ins in code.code):
        return None
    formals = target.formals
    nargs = len(call.args)
    if nargs > len(formals):
        return None
    defaults = None
    if nargs < len(formals):
        defaults = _default_values(target)
        if defaults is None:
            return None
        if any(defaults[j] is _MISSING for j in range(nargs, len(formals))):
            return None

    # When the argument types are statically known at the splice site, build
    # the callee under that entry context: the context-matched version of
    # the body, with its redundant entry guards dropped (they are implied by
    # the caller's types).  Params stay boxed — the substituted argument
    # values are boxed IR values, not dispatch-unboxed registers.
    sub_ctx = None
    if config.ctxdispatch:
        ats = [a.type for a in call.args]
        if defaults is not None:
            ats += [rtype_quick(defaults[j]) for j in range(nargs, len(formals))]
        if len(ats) == len(formals) and any(t.kind is not Kind.ANY for t in ats):
            sub_ctx = CallContext(
                tuple(ats), tuple(t.kind is not Kind.ANY for t in ats)
            )
    try:
        sub = GraphBuilder(vm, code, target,
                           entry_ctx=sub_ctx, unbox_params=False).build()
    except CompilationFailure:
        return None
    if not sub.env_elided:
        return None
    sub_info = getattr(sub, "escape_info", None)
    if sub_info is not None and sub_info.env_names:
        # mixed (escape-analyzed) callee: env_elided is set but the body
        # materializes its own partial MkEnv environment — splicing it would
        # put a second environment into the caller's unit
        return None
    params = [p for p in sub.params if isinstance(p, I.Param)]
    if len(params) != len(formals):
        return None
    rets = [ins for sbb in sub.blocks for ins in sbb.instrs if isinstance(ins, I.Return)]
    if not rets:
        return None
    needs_env = any(
        isinstance(ins, (I.LdVarEnv, I.LdFun)) and not ins.args
        for sbb in sub.blocks
        for ins in sbb.instrs
    )

    # -- the caller frame for nested FrameStates --------------------------------
    # The guard's framestate describes the caller *at* the call pc, with the
    # callee and arguments on top of the recorded stack.  The parent frame
    # of every checkpoint inside the inlined body is the caller re-entered
    # at the post-call pc (each bytecode op is one pc slot) with callee and
    # args popped — the callee's return value is pushed on resume.
    caller_stack = guard_fs.stack[: len(guard_fs.stack) - nargs - 1]

    def caller_frame() -> FrameStateDescr:
        return FrameStateDescr(
            guard_fs.code, call.bc_pc + 1,
            list(guard_fs.env_slots), list(caller_stack),
            env_value=guard_fs.env_value,
            parent=_copy_chain(guard_fs.parent),
            fun=guard_fs.fun,
        )

    # -- split the caller block at the call -------------------------------------
    tail = bb.instrs[idx + 1:]
    del bb.instrs[idx:]
    call.block = None
    cont = graph.new_block()
    cont.instrs = tail
    for t in tail:
        t.block = cont
    for succ in cont.successors():
        for phi in succ.phis():
            phi.inputs = [(cont if b is bb else b, v) for b, v in phi.inputs]

    # -- transfer the callee blocks into the caller graph ------------------------
    for sbb in sub.blocks:
        sbb.graph = graph
        sbb.id = len(graph.blocks)
        graph.blocks.append(sbb)
        for ins in sbb.instrs:
            ins.id = graph.next_id()

    # -- argument values: direct substitutions (plus constant defaults) ----------
    argvals = list(call.args)
    if defaults is not None:
        for j in range(nargs, len(formals)):
            c = I.Const(defaults[j], rtype_quick(defaults[j]))
            c.bc_pc = call.bc_pc
            bb.append(c)
            argvals.append(c)
    env_c = None
    if needs_env:
        # free-variable accesses in the callee resolve in its lexical env,
        # a compile-time constant at a speculated site
        env_c = I.Const(target.env, _ENV_T)
        env_c.bc_pc = call.bc_pc
        bb.append(env_c)
    for a in argvals:
        # a Box is a fresh per-call allocation nobody else aliases, so the
        # NAMED bump is unobservable — skipping it keeps the boxed argument
        # dead once the peephole folds the callee's re-guarding of it
        if isinstance(a, I.Box):
            continue
        share = I.Share(a)
        share.bc_pc = call.bc_pc
        bb.append(share)
    bb.append(I.Jump(sub.entry))

    for i, p in enumerate(params):
        graph.replace_all_uses(p, argvals[i])
        if p.block is not None:
            p.block.remove(p)

    if env_c is not None:
        for sbb in sub.blocks:
            for ins in sbb.instrs:
                if isinstance(ins, (I.LdVarEnv, I.LdFun)) and not ins.args:
                    ins.args = [env_c]

    # -- nest every checkpoint of the inlined body ------------------------------
    seen = set()
    for sbb in sub.blocks:
        for ins in sbb.instrs:
            fs = getattr(ins, "framestate", None)
            if fs is None or id(fs) in seen:
                continue
            seen.add(id(fs))
            root = fs
            while root.parent is not None:
                root = root.parent
            if root.fun is None:
                root.fun = target
            root.parent = caller_frame()

    # -- RETURN becomes a jump to the continuation ------------------------------
    phi = I.Phi(ANY)
    for ret in rets:
        rbb = ret.block
        v = ret.args[0]
        rbb.remove(ret)
        rbb.append(I.Jump(cont))
        phi.add_input(rbb, v)
    cont.insert_front(phi)
    graph.replace_all_uses(call, phi)

    graph.recompute_preds()
    vm.state.emit(
        "inline", graph.name,
        callee=code.name, pc=call.bc_pc, depth=_chain_depth(guard_fs), size=n_ops,
    )
    new_calls = [
        ins for sbb in sub.blocks for ins in sbb.instrs if isinstance(ins, I.StaticCall)
    ]
    return n_ops, new_calls
