"""Optimization passes over the IR."""

from .dce import dce
from .dse import dse
from .pipeline import optimize
from .simplify import simplify

__all__ = ["dce", "dse", "optimize", "simplify"]
