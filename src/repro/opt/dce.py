"""Dead code elimination.

An instruction is live when it is effectful, a terminator, or (transitively)
used by a live instruction — **including uses from FrameStates**: a value
that only the deoptimizer needs must survive, which is exactly the "amass
enough meta-data for the state mapping" obligation the paper describes in
section 2.
"""

from __future__ import annotations

from typing import Set

from ..ir import instructions as I
from ..ir.cfg import Graph


def dce(graph: Graph) -> int:
    live: Set[int] = set()
    work = []
    for bb in graph.rpo():
        for ins in bb.instrs:
            if ins.effectful or isinstance(ins, (I.Branch, I.Jump, I.Return)):
                if id(ins) not in live:
                    live.add(id(ins))
                    work.append(ins)
    while work:
        ins = work.pop()
        for a in ins.args:
            if id(a) not in live:
                live.add(id(a))
                work.append(a)
        fs = getattr(ins, "framestate", None)
        if fs is not None:
            for v in fs.iter_values():
                if id(v) not in live:
                    live.add(id(v))
                    work.append(v)
    removed = 0
    for bb in graph.rpo():
        for ins in list(bb.instrs):
            if id(ins) not in live:
                bb.remove(ins)
                removed += 1
    return removed
