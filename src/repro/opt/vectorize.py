"""Guard-hoisted loop vectorization (annotation pass).

Recognizes speculatively-typed *counted loops over vectors* in the optimized
IR — the canonical shape the builder produces for ``for (i in 1:n)`` — and
annotates the graph with a :class:`LoopPlan` per vectorizable loop.  The
lowerer (``native/lower.py``) turns each plan into one **bulk kernel op**
(``VSUM``/``VMAP_ARITH``/``VCMP_REDUCE``/``VFILL``/``VCOPYN``) placed at the
loop header, with the scalar loop retained as the fall-through: the kernel
verifies the hoisted whole-vector conditions once at entry (the per-element
``Assume``/``GTYPE`` guards of the body, plus bounds/aliasing/NA ranges) and
then runs the remaining elements over the raw unboxed buffer in one
dispatch.  Anything the kernel cannot prove — a promise in the way, a type
mismatch, an ``NA`` at element *k*, a chaos-mode invalidation — ends bulk
execution at an exact element boundary (or materializes the mid-iteration
registers through a ``KernelFrameTemplate``) and control falls back into
the unmodified scalar loop, which reproduces the reference execution —
including its deopts — from that element on.

The pass only *annotates*: the IR is never rewritten, so a rejected loop is
bit-identical to the unvectorized compile (the legality tests assert this),
and scalar engines (``Config.vectorize = False``) simply never consult the
plans.

Rejections are not silent: once a block has matched the counted-loop prelude
(induction phi + bound compare), any subsequent failure is recorded as a
*decline* with a reason tag — ``nested-control``, ``call``, ``aliasing``,
``env-store``, ``no-reduction``, ... — and the loop's approximate bytecode
pc (the first FrameState found in it).  ``vectorize_loops`` aggregates the
declines into ``Telemetry.vec_declines`` / ``vec_decline_reasons`` /
``vec_decline_log`` when given a telemetry ``state``, so a workload that
silently shows ``kernel_elements: 0`` (spectralnorm: its hot loops call a
closure per element) can be diagnosed instead of guessed at.

Legality (beyond the structural match):

* no calls, closure/promise creation, environment stores, or nested loops
  in the body;
* the only cross-iteration dependence is the single recognized reduction
  (``+``/``*`` accumulate, compare-select min/max, or the generic boxed
  ``+`` of the colsum shape);
* every vector read is through a loop-invariant chain, the iteration space
  is a verified identity ``1:n`` colon, and the written vector (if any) is
  distinct from every read vector (runtime identity is re-checked at kernel
  entry);
* every loop-defined value that a deopt FrameState can reference maps to a
  symbolic role (``osr/framestate.py:eval_kernel_role``) so mid-kernel
  deopts can reconstruct the interpreter state at any element.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..ir import instructions as I
from ..ir.cfg import BasicBlock, Graph

#: arithmetic ops a VMAP_ARITH kernel can replicate exactly
_MAP_OPS = ("+", "-", "*", "/")
#: compare ops a VCMP_REDUCE kernel supports
_CMP_OPS = ("<", "<=", ">", ">=")


class InvChain:
    """A loop-invariant value chain (env load / forced phi / outside value).

    ``root`` is ``("env", name)`` for a free-variable load re-executed every
    iteration, ``("phi", phi)`` for an invariant-valued header phi (the
    in-place output vector of a map/fill/copy), or ``("value", ir_value)``
    for a value defined outside the loop.  ``gtype`` is the hoisted
    per-iteration type guard, when the chain carries one.  ``members`` are
    the in-loop instructions whose registers hold this value (written once
    at kernel entry).  ``guard_assume`` is the Assume of the hoisted guard
    (its deopt descriptor doubles as the chaos exit for this chain).
    """

    __slots__ = ("key", "root", "gtype", "gident", "members", "guard_assume")

    def __init__(self, key: int, root: Tuple[str, Any]):
        self.key = key
        self.root = root
        self.gtype = None
        self.gident = None   # hoisted identity guard (IsIdentical expected value)
        self.members: List[I.Instr] = []
        self.guard_assume: Optional[I.Assume] = None


class LoopPlan:
    """Everything the lowerer needs to kernelize one recognized loop."""

    __slots__ = (
        "kind", "header", "body_blocks", "latch", "exit_block", "body_on_true",
        "idx_phi", "bound", "idx_inc", "seq_load", "seq_static", "seqv_phis",
        "acc_phi", "acc_kind",
        "acc_gtype", "acc_op", "invs", "roles", "elem_keys",
        "store", "out_key", "store_kind", "val_spec",
        "cmp_op", "cmp_elem_first", "cmp_update_block", "sel_phi",
        "expr", "gather_keys", "addressing", "pc",
    )

    def __init__(self):
        self.kind = None                 # 'sum' | 'prod' | 'gsum' | 'fsum' | 'map' | 'fill' | 'copy' | 'cmp'
        self.header = None
        self.body_blocks: List[BasicBlock] = []
        self.latch = None
        self.exit_block = None
        self.body_on_true = True
        self.idx_phi = None
        self.bound = None
        self.idx_inc = None
        self.seq_load = None
        self.seq_static = True   # identity colon proven statically
        self.seqv_phis: List[I.Phi] = []   # phis carrying the loop variable
        self.acc_phi = None
        self.acc_kind = None             # Kind of the raw accumulator (sum/prod/cmp)
        self.acc_gtype = None            # per-iteration guard type on the boxed acc (gsum)
        self.acc_op = None               # '+' or '*'
        self.invs: List[InvChain] = []
        self.roles: Dict[int, tuple] = {}
        self.elem_keys: List[int] = []   # inv keys of vectors read element-wise
        self.store = None
        self.out_key = None
        self.store_kind = None
        self.val_spec = None             # ('const', ir) | ('elem', key) | ('map', op, elem_first, operand_ir)
        self.cmp_op = None
        self.cmp_elem_first = True
        self.cmp_update_block = None
        self.sel_phi = None
        self.expr = None                 # fused map→reduce role tree (fsum)
        self.gather_keys: List[int] = []  # inv keys read via computed subscripts
        self.addressing = "unit"         # 'unit' | 'strided' | 'gather'
        self.pc = -1                     # approximate bytecode pc of the loop

    def __repr__(self) -> str:  # pragma: no cover
        return "<LoopPlan %s header=BB%d>" % (self.kind, self.header.id if self.header else -1)


#: cap on the per-VM (fn, pc, reason) decline log — counts are unbounded,
#: the log is a deduped diagnostic sample of distinct sites (the bounded
#: dedupe itself lives in jit.telemetry.dedup_log, shared with escape.py)
_DECLINE_LOG_CAP = 200


def vectorize_loops(graph: Graph, config=None, state=None) -> List[LoopPlan]:
    """Annotate ``graph.vector_loops``; returns the plans for convenience.

    ``state`` (a :class:`~repro.jit.telemetry.Telemetry`) receives the
    decline diagnostics; pass None to run the pass silently.
    """
    plans: List[LoopPlan] = []
    graph.vector_loops = plans
    if config is not None and not getattr(config, "vectorize", True):
        return plans
    if not graph.env_elided:
        # an escaping environment can be mutated behind the kernel's back
        return plans
    declines: List[Tuple[str, int, frozenset]] = []
    uses = graph.compute_uses()
    for bb in graph.rpo():
        plan = _match_loop(graph, bb, uses, declines.append)
        if plan is not None:
            plans.append(plan)
    if state is not None:
        _record_telemetry(graph, plans, declines, state)
    return plans


def _record_telemetry(graph: Graph, plans, declines, state) -> None:
    # lazy: opt modules load during jit's own package init (vm -> pipeline)
    from ..jit.telemetry import dedup_log
    # a "nested-control" decline whose collected blocks contain a planned
    # inner header is the *outer scalar driver* of a recognized nest — the
    # inner loop kernelizes, so retag the decline to make that auditable
    plan_headers = {p.header.id: p for p in plans}
    outer_pcs: Dict[int, int] = {}
    for i, (reason, pc, ids) in enumerate(declines):
        if reason == "nested-control":
            inner = [h for h in plan_headers if h in ids]
            if inner:
                declines[i] = ("outer-driver", pc, ids)
                for h in inner:
                    outer_pcs.setdefault(h, pc)
    for reason, pc, _ids in declines:
        state.vec_declines += 1
        state.vec_decline_reasons[reason] = (
            state.vec_decline_reasons.get(reason, 0) + 1
        )
        # dedupe: one log entry per (fn, pc, reason) with an occurrence count
        dedup_log(state.vec_decline_log, (graph.name, pc, reason))
    for p in plans:
        entry = (graph.name, p.pc, p.kind, p.addressing,
                 outer_pcs.get(p.header.id))
        if entry not in state.vec_plans and len(state.vec_plans) < _DECLINE_LOG_CAP:
            state.vec_plans.append(entry)


# ---------------------------------------------------------------------------
# structural matching
# ---------------------------------------------------------------------------

def _match_loop(graph: Graph, header: BasicBlock, uses, report=None) -> Optional[LoopPlan]:
    term = header.terminator
    if not isinstance(term, I.Branch):
        return None
    cond = term.args[0]
    if not (isinstance(cond, I.PrimCompare) and cond.op == "<" and cond.block is header):
        return None
    idx_phi, bound = cond.args[0], cond.args[1]
    if not (isinstance(idx_phi, I.Phi) and idx_phi.block is header):
        return None

    # From here the block is a counted-loop header (induction phi + bound
    # compare): every subsequent failure is a reportable *decline*.
    body: List[BasicBlock] = []

    def loop_pc() -> int:
        for bb in [header] + body:
            for ins in bb.instrs:
                fs = getattr(ins, "framestate", None)
                if fs is not None and getattr(fs, "pc", None) is not None:
                    return fs.pc
        return -1

    def decline(reason: str) -> None:
        if report is not None:
            # the collected block ids let the caller recognize this loop as
            # the outer driver of a planned inner kernel (nest retagging)
            report((reason, loop_pc(), frozenset(bb.id for bb in body)))
        return None

    def fail(reason: str) -> bool:
        decline(reason)
        return False

    # the header must be exactly phis + compare + branch (the lowerer's
    # kernel placement assumes the scalar exit check starts at header+1)
    for ins in header.instrs:
        if isinstance(ins, I.Phi) or ins is cond or ins is term:
            continue
        return decline("header-effects")

    plan = LoopPlan()
    plan.header = header
    plan.idx_phi = idx_phi
    plan.bound = bound
    plan.body_on_true = True
    body_entry, plan.exit_block = term.true_block, term.false_block

    # collect the loop body: blocks reachable from the body entry without
    # passing through the header again.  The body is collected *fully* (so a
    # "nested-control" decline can report which blocks it saw — the nest
    # retagging in ``vectorize_loops`` keys on them), then bounded.
    seen = {header.id}
    work = [body_entry]
    while work:
        bb = work.pop()
        if bb.id in seen:
            continue
        seen.add(bb.id)
        body.append(bb)
        if len(body) > 64:  # runaway region — give up collecting
            return decline("nested-control")
        for s in bb.successors():
            if s is not header:
                work.append(s)
    body_ids = {bb.id for bb in body}
    # an inner cycle (a back-edge within the body) means a nested loop: this
    # loop stays scalar and can only be the outer driver of an inner kernel
    if _has_inner_cycle(body_entry, header, body_ids):
        return decline("nested-control")
    if plan.exit_block.id in body_ids:
        return decline("irreducible-body")
    # single latch; no side entries into the body
    latches = [p for p in header.preds if p.id in body_ids]
    if len(latches) != 1 or len(header.preds) != 2:
        return decline("multiple-latches")
    plan.latch = latches[0]
    if not isinstance(plan.latch.terminator, I.Jump):
        return decline("irreducible-body")
    for bb in body:
        for p in bb.preds:
            if p.id not in body_ids and not (bb is body_entry and p is header):
                return decline("side-entry")
    plan.body_blocks = [bb for bb in graph.rpo() if bb.id in body_ids]

    def in_loop(v: I.Instr) -> bool:
        return v.block is not None and (v.block.id in body_ids or v.block is header)

    if in_loop(bound) or isinstance(bound, I.Phi) and bound.block is header:
        return decline("loop-varying-bound")

    # induction: idx_phi's backedge input is idx + 1
    back = _phi_input(idx_phi, plan.latch)
    if not (
        isinstance(back, I.PrimArith) and back.op == "+" and back.block.id in body_ids
        and back.args[0] is idx_phi and isinstance(back.args[1], I.Const)
        and back.args[1].value == 1
    ):
        return decline("irregular-induction")
    plan.idx_inc = back

    # iteration space: a VecLoad of an identity 1:n colon at idx+1.  OSR-entry
    # graphs carry the sequence in as opaque loop state (a Param) — accept any
    # loop-invariant base and let the kernel verify the 1..n content at
    # runtime (it declines on anything else, leaving the scalar loop to run).
    seq_load = None
    fallback = None
    for bb in plan.body_blocks:
        for ins in bb.instrs:
            if isinstance(ins, I.VecLoad) and ins.args[1] is plan.idx_inc and not in_loop(ins.args[0]):
                if _is_identity_colon(ins.args[0], in_loop):
                    seq_load = ins
                    break
                if fallback is None:
                    fallback = ins
        if seq_load is not None:
            break
    if seq_load is None and fallback is not None:
        seq_load = fallback
        plan.seq_static = False
    if seq_load is None:
        return decline("no-elementwise-read")
    plan.seq_load = seq_load

    if not _assign_roles(graph, plan, uses, in_loop, fail):
        return None
    plan.pc = loop_pc()
    return plan


def _phi_input(phi: I.Phi, pred: BasicBlock):
    for blk, val in phi.inputs:
        if blk is pred:
            return val
    return None


def _has_inner_cycle(entry: BasicBlock, header: BasicBlock, body_ids) -> bool:
    """DFS back-edge detection within the body region (edges to the header —
    the loop's own backedge — excluded).  Forks/joins (the compare-select
    diamond) are acyclic and pass; a nested loop's latch→header edge trips."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {bid: WHITE for bid in body_ids}
    succs = lambda b: iter([s for s in b.successors()
                            if s is not header and s.id in body_ids])
    color[entry.id] = GRAY
    stack = [(entry, succs(entry))]
    while stack:
        node, it = stack[-1]
        nxt = next(it, None)
        if nxt is None:
            color[node.id] = BLACK
            stack.pop()
        elif color[nxt.id] == GRAY:
            return True
        elif color[nxt.id] == WHITE:
            color[nxt.id] = GRAY
            stack.append((nxt, succs(nxt)))
    return False


def _is_identity_colon(v: I.Instr, in_loop) -> bool:
    """``CastType(Force(Colon(1, n)))`` outside the loop: elements are the
    ints ``1..n`` — no NAs and no gather needed for bulk access."""
    while isinstance(v, (I.CastType, I.Force)):
        if in_loop(v):
            return False
        v = v.args[0]
    if not (isinstance(v, I.Colon) and not in_loop(v)):
        return False
    start = v.args[0]
    if not isinstance(start, I.Const):
        return False
    val = getattr(start, "value", None)
    if hasattr(val, "data") and hasattr(val, "kind"):  # boxed scalar const
        val = val.data[0] if len(val.data) == 1 else None
    return not isinstance(val, bool) and val in (1, 1.0)


# ---------------------------------------------------------------------------
# role assignment + kernel classification
# ---------------------------------------------------------------------------

#: decline tags for whole-op classes the kernels can never model
_OP_DECLINES = {
    I.Call: "call",
    I.StaticCall: "call",
    I.CallBuiltin: "call",
    I.CheckFun: "call",
    I.MkClosure: "closure-alloc",
    I.MkPromise: "closure-alloc",
    I.StVarEnv: "env-store",
    I.StVarSuper: "env-store",
    I.SetIndex1: "generic-index-store",
    I.SetIndex2: "generic-index-store",
    I.Extract1: "generic-index-read",
}


def _assign_roles(graph: Graph, plan: LoopPlan, uses, in_loop, fail) -> bool:
    roles = plan.roles
    roles[id(plan.idx_phi)] = ("idx",)
    roles[id(plan.idx_inc)] = ("idx1",)
    roles[id(plan.seq_load)] = ("seq",)

    invs: List[InvChain] = plan.invs
    inv_by_root: Dict[Any, InvChain] = {}

    def new_chain(root) -> InvChain:
        ch = inv_by_root.get(root if root[0] != "value" else ("value", id(root[1])))
        if ch is not None:
            return ch
        ch = InvChain(len(invs), root)
        invs.append(ch)
        inv_by_root[root if root[0] != "value" else ("value", id(root[1]))] = ch
        return ch

    def chain_of(v: I.Instr) -> Optional[InvChain]:
        r = roles.get(id(v))
        if r is not None and r[0] == "inv":
            return invs[r[1]]
        if not in_loop(v):
            return new_chain(("value", v))
        return None

    #: roles a fused expression tree may reference directly
    _EXPR_OK = ("elem", "gelem", "seq", "idx1", "idx", "inv", "uinv", "expr", "cval")

    def expr_role(v: I.Instr):
        """The role of ``v`` usable as a fused-expression operand, or None."""
        r = roles.get(id(v))
        if r is not None and r[0] in _EXPR_OK:
            return r
        if isinstance(v, I.Const):
            val = getattr(v, "value", None)
            if hasattr(val, "data") and hasattr(val, "kind"):  # boxed scalar
                val = val.data[0] if len(val.data) == 1 else None
            if val is not None and isinstance(val, (int, float)):
                return ("cval", val)
            return None
        if not in_loop(v):
            ch = new_chain(("value", v))
            return ("inv", ch.key)
        return None

    # -- header phis: the accumulator and invariant-valued vector phis -------
    acc_candidates: List[I.Phi] = []
    for phi in plan.header.phis():
        if phi is plan.idx_phi:
            continue
        back = _phi_input(phi, plan.latch)
        if back is plan.seq_load:
            # the loop variable itself, carried across the backedge (the
            # OSR-entry shape): at the head of iteration j it holds
            # seq[j] == j — the kernel entry-checks that and advances the
            # register together with the induction variable
            roles[id(phi)] = ("idx",)
            plan.seqv_phis.append(phi)
            continue
        if _chases_to_phi(back, phi):
            ch = new_chain(("phi", phi))
            ch.members.append(phi)
            roles[id(phi)] = ("inv", ch.key)
        else:
            acc_candidates.append(phi)
    if len(acc_candidates) > 1:
        return fail("multiple-accumulators")
    acc_phi = acc_candidates[0] if acc_candidates else None
    if acc_phi is not None:
        roles[id(acc_phi)] = ("acc",)
    plan.acc_phi = acc_phi

    istype_guards: Dict[int, I.Instr] = {}   # id(IsType) -> guarded value
    ident_guards: Dict[int, I.Instr] = {}    # id(IsIdentical) -> guarded value
    acc_update = None
    cmp_ins = None
    store = None
    mapval = None

    for bb in plan.body_blocks:
        for ins in bb.instrs:
            if ins is plan.idx_inc or ins is plan.seq_load:
                continue
            t = type(ins)
            if t is I.Const:
                continue
            if t is I.Jump:
                continue
            if t is I.LdVarEnv:
                if ins.args:  # env-chain load through a real environment
                    return fail("env-chain-load")
                ch = new_chain(("env", ins.vname))
                ch.members.append(ins)
                roles[id(ins)] = ("inv", ch.key)
                continue
            if t is I.LdFun:
                # a function lookup re-executed every iteration: invariant as
                # long as no body op stores into an environment (none may).
                # The kernel replays the lexical-chain lookup once at entry
                # and declines if the name does not resolve to a function.
                if ins.args:  # lookup through a real environment
                    return fail("env-chain-load")
                ch = new_chain(("fun", ins.vname))
                ch.members.append(ins)
                roles[id(ins)] = ("inv", ch.key)
                continue
            if t is I.Force:
                src = ins.args[0]
                if src is acc_phi:
                    roles[id(ins)] = ("acc",)
                    continue
                ch = chain_of(src)
                if ch is None:
                    return fail("non-invariant-operand")
                ch.members.append(ins)
                roles[id(ins)] = ("inv", ch.key)
                continue
            if t is I.CastType:
                src = ins.args[0]
                r = roles.get(id(src))
                if r is not None and r[0] == "acc":
                    roles[id(ins)] = ("acc",)
                    continue
                ch = chain_of(src)
                if ch is None:
                    return fail("non-invariant-operand")
                ch.members.append(ins)
                roles[id(ins)] = ("inv", ch.key)
                continue
            if t is I.IsType:
                src = ins.args[0]
                # must lower to a fused GTYPE: single use feeding one Assume
                users = uses.get(ins, [])
                if len(users) != 1 or not isinstance(users[0], I.Assume):
                    return fail("unfused-guard")
                r = roles.get(id(src))
                if r is not None and r[0] == "acc":
                    if plan.acc_gtype is not None:
                        return fail("conflicting-guards")
                    plan.acc_gtype = ins.test_type
                    istype_guards[id(ins)] = src
                    continue
                ch = chain_of(src)
                if ch is None:
                    return fail("non-invariant-operand")
                if ch.gtype is not None and ch.gtype != ins.test_type:
                    return fail("conflicting-guards")
                ch.gtype = ins.test_type
                istype_guards[id(ins)] = src
                continue
            if t is I.IsIdentical:
                # must lower to a fused GIDENT: single use feeding one Assume
                users = uses.get(ins, [])
                if len(users) != 1 or not isinstance(users[0], I.Assume):
                    return fail("unfused-guard")
                ch = chain_of(ins.args[0])
                if ch is None:
                    return fail("non-invariant-operand")
                if ch.gident is not None and ch.gident is not ins.expected:
                    return fail("conflicting-guards")
                ch.gident = ins.expected
                ident_guards[id(ins)] = ins.args[0]
                continue
            if t is I.Assume:
                cond = ins.args[0]
                src = istype_guards.get(id(cond)) or ident_guards.get(id(cond))
                if src is None:
                    # cold-branch assumes: not modeled
                    return fail("unmodeled-assume")
                r = roles.get(id(src))
                if r is not None and r[0] == "inv":
                    invs[r[1]].guard_assume = ins
                continue
            if t is I.VecLoad:
                if ins.args[1] is not plan.seq_load and ins.args[1] is not plan.idx_inc:
                    # a computed subscript: gather addressing, legal when the
                    # index is itself a fused-expression role (x[idx[i]],
                    # x[a + s*i]).  Per-element bounds/NA checks run in the
                    # kernel and stop coverage *before* a failing element.
                    idx_role = expr_role(ins.args[1])
                    if idx_role is None:
                        return fail("gather-index")
                    ch = chain_of(ins.args[0])
                    if ch is None:
                        return fail("non-invariant-vector")
                    roles[id(ins)] = ("gelem", ch.key, idx_role)
                    if ch.key not in plan.gather_keys:
                        plan.gather_keys.append(ch.key)
                    continue
                ch = chain_of(ins.args[0])
                if ch is None:
                    return fail("non-invariant-vector")
                key = ch.key
                roles[id(ins)] = ("elem", key)
                if key not in plan.elem_keys:
                    plan.elem_keys.append(key)
                continue
            if t is I.Unbox:
                r = roles.get(id(ins.args[0]))
                if r == ("acc",):
                    roles[id(ins)] = ("acc_raw",)
                    continue
                if r is not None and r[0] == "inv":
                    roles[id(ins)] = ("uinv", r[1])
                    continue
                return fail("unrecognized-unbox")
            if t is I.Box:
                r = roles.get(id(ins.args[0]))
                if r is None:
                    return fail("unrecognized-box")
                roles[id(ins)] = ("box", r, ins.kind)
                continue
            if t is I.Extract2:
                ch = chain_of(ins.args[0])
                ridx = roles.get(id(ins.args[1]))
                if ch is None or ridx is None or ridx[0] != "box" or ridx[1] not in (("seq",), ("idx1",)):
                    return fail("generic-extract-shape")
                roles[id(ins)] = ("ex2", ch.key)
                if ch.key not in plan.elem_keys:
                    plan.elem_keys.append(ch.key)
                continue
            if t is I.Arith:
                # the generic boxed accumulate of the colsum shape
                ra = roles.get(id(ins.args[0]))
                rb = roles.get(id(ins.args[1]))
                pair = {None if ra is None else ra[0], None if rb is None else rb[0]}
                if ins.op != "+" or acc_update is not None or pair != {"box", "ex2"}:
                    return fail("generic-arith-shape")
                box_r = ra if ra[0] == "box" else rb
                if box_r[1] != ("acc_raw",):
                    return fail("generic-arith-shape")
                plan.kind = "gsum"
                acc_update = ins
                roles[id(ins)] = ("acc_next",)
                continue
            if t is I.PrimArith:
                ra = roles.get(id(ins.args[0]))
                rb = roles.get(id(ins.args[1]))
                # reduction update: acc ⊕ X, where X is a bare element (the
                # sum/prod fast shape) or a whole fused expression (fsum)
                if acc_phi is not None and acc_update is None and ins.op in ("+", "*"):
                    a_is_acc = ins.args[0] is acc_phi or ra == ("acc",)
                    b_is_acc = ins.args[1] is acc_phi or rb == ("acc",)
                    if a_is_acc != b_is_acc:
                        other = ins.args[1] if a_is_acc else ins.args[0]
                        ro = rb if a_is_acc else ra
                        if ro is not None and ro[0] == "elem":
                            plan.kind = "sum" if ins.op == "+" else "prod"
                        else:
                            ro = expr_role(other)
                            if ro is not None:
                                plan.kind = "fsum"
                                plan.expr = ro
                        if plan.kind is not None:
                            plan.acc_op = ins.op
                            plan.acc_kind = ins.kind
                            acc_update = ins
                            roles[id(ins)] = ("acc_next",)
                            continue
                # elementwise map value: elem <op> invariant operand (store
                # loops only — reduction loops fuse through expr roles)
                if ins.op in _MAP_OPS and mapval is None and acc_phi is None:
                    elem_first = ra is not None and ra[0] == "elem"
                    other = ins.args[1] if elem_first else ins.args[0]
                    this = ins.args[0] if elem_first else ins.args[1]
                    rt = roles.get(id(this))
                    if rt is not None and rt[0] == "elem" and (
                        isinstance(other, I.Const) or not in_loop(other)
                    ):
                        mapval = (ins, ins.op, elem_first, other)
                        roles[id(ins)] = ("mapval",)
                        continue
                # an interior node of a fused map→reduce expression
                if ins.op in _MAP_OPS:
                    ea = expr_role(ins.args[0])
                    eb = expr_role(ins.args[1])
                    if ea is not None and eb is not None:
                        roles[id(ins)] = ("expr", ins.op, ea, eb)
                        continue
                return fail("unrecognized-arith")
            if t is I.PrimCompare:
                ra = roles.get(id(ins.args[0]))
                if cmp_ins is not None or acc_phi is None:
                    return fail("unrecognized-compare")
                if ins.args[0] is not acc_phi and (ra is None or ra[0] != "elem"):
                    return fail("unrecognized-compare")
                other = ins.args[1] if ins.args[0] is not acc_phi else ins.args[0]
                rother = roles.get(id(other))
                elem_first = ins.args[0] is not acc_phi
                if elem_first and other is not acc_phi:
                    return fail("unrecognized-compare")
                if not elem_first and (rother is None or rother[0] != "elem"):
                    return fail("unrecognized-compare")
                if ins.op not in _CMP_OPS:
                    return fail("unrecognized-compare")
                cmp_ins = ins
                plan.cmp_op = ins.op
                plan.cmp_elem_first = elem_first
                plan.acc_kind = ins.kind
                roles[id(ins)] = ("cmp",)
                continue
            if t is I.VecStore:
                if store is not None:
                    return fail("multiple-stores")
                if ins.args[1] is not plan.seq_load and ins.args[1] is not plan.idx_inc:
                    return fail("gather-index")
                ch = chain_of(ins.args[0])
                if ch is None or ch.root[0] != "phi":
                    return fail("store-target-not-invariant")
                vr = roles.get(id(ins.args[2]))
                if isinstance(ins.args[2], I.Const):
                    plan.val_spec = ("const", ins.args[2])
                elif vr is not None and vr[0] == "elem":
                    plan.val_spec = ("elem", vr[1])
                elif vr == ("mapval",):
                    plan.val_spec = ("map", mapval[1], mapval[2], mapval[3])
                else:
                    return fail("unrecognized-store-value")
                store = ins
                plan.out_key = ch.key
                plan.store_kind = ins.kind
                # the store's value *is* the out vector (in-place fast path,
                # guaranteed by the kernel's entry checks)
                roles[id(ins)] = ("inv", ch.key)
                continue
            if t is I.Branch:
                if roles.get(id(ins.args[0])) != ("cmp",):
                    return fail("data-dependent-branch")
                continue
            if t is I.Phi:
                # only the compare-select join phi is allowed inside the body
                if cmp_ins is None or plan.sel_phi is not None or ins.block is not plan.latch:
                    return fail("compare-select-shape")
                plan.sel_phi = ins
                roles[id(ins)] = ("acc_next",)
                continue
            return fail(_OP_DECLINES.get(t, "unsupported-op:%s" % t.__name__))

    return _classify(graph, plan, uses, in_loop, acc_update, cmp_ins, store, fail)


def _chases_to_phi(v: I.Instr, phi: I.Phi) -> bool:
    """Backedge value of an invariant phi: Force/CastType/in-place VecStore
    chains terminating at the phi itself.  Box/Unbox round-trips are chased
    too: a guarded scalar invariant re-boxed each iteration
    (``Box(Unbox(Force(phi)))``) carries the same payload — the guard pins
    the kind, so the re-box is value-identical."""
    seen = 0
    while seen < 12:
        if v is phi:
            return True
        if isinstance(v, (I.Force, I.CastType, I.VecStore, I.Box, I.Unbox)):
            v = v.args[0]
            seen += 1
            continue
        return False
    return False


def _classify_addressing(plan: LoopPlan, fail) -> bool:
    """Bound the fused expression and tag the plan's addressing mode:
    ``gather`` when any subscript reads a data vector (``x[idx[i]]``),
    ``strided`` when subscripts are affine in the induction variable only
    (``x[a + s*i]``), ``unit`` otherwise."""
    nodes = 0
    gathers = []
    work = [plan.expr]
    while work:
        r = work.pop()
        nodes += 1
        if nodes > 64:
            # spectralnorm's inlined eval_A chain is ~29 nodes; the cap only
            # exists to bound pathological machine-generated expressions
            return fail("fused-expr-too-large")
        if r[0] == "expr":
            work.append(r[2])
            work.append(r[3])
        elif r[0] == "gelem":
            gathers.append(r[2])
            work.append(r[2])
    if not gathers:
        plan.addressing = "unit"
        return True

    def reads_data(role) -> bool:
        stk = [role]
        while stk:
            r = stk.pop()
            if r[0] in ("elem", "gelem"):
                return True
            if r[0] == "expr":
                stk.append(r[2])
                stk.append(r[3])
        return False

    plan.addressing = "gather" if any(reads_data(g) for g in gathers) else "strided"
    return True


def _classify(graph: Graph, plan: LoopPlan, uses, in_loop, acc_update, cmp_ins, store, fail) -> bool:
    header, latch = plan.header, plan.latch

    if plan.gather_keys and not (store is None and cmp_ins is None and acc_update is not None):
        # gather addressing is only modeled for fused reductions
        return fail("gather-index")
    if store is not None:
        if acc_update is not None or cmp_ins is not None or plan.acc_phi is not None:
            return fail("mixed-store-reduction")
        plan.store = store
        plan.kind = {"const": "fill", "elem": "copy", "map": "map"}[plan.val_spec[0]]
        # never write a vector the loop also reads (runtime identity is
        # additionally re-checked at kernel entry)
        if plan.out_key in plan.elem_keys:
            return fail("aliasing")
        out_root = plan.invs[plan.out_key].root
        for k in plan.elem_keys:
            if plan.invs[k].root == out_root:
                return fail("aliasing")
    elif cmp_ins is not None:
        if acc_update is not None or plan.sel_phi is None or plan.acc_phi is None:
            return fail("compare-select-shape")
        # arms: the update arm reloads the element, the other is empty
        branch = cmp_ins.block.terminator
        if not isinstance(branch, I.Branch) or branch.args[0] is not cmp_ins:
            return fail("compare-select-shape")
        sel_back = _phi_input(plan.acc_phi, latch)
        if sel_back is not plan.sel_phi:
            return fail("compare-select-shape")
        update_block = None
        for blk, val in plan.sel_phi.inputs:
            r = plan.roles.get(id(val))
            if r is not None and r[0] == "elem":
                update_block = blk
            elif val is not plan.acc_phi:
                return fail("compare-select-shape")
        if update_block is None:
            return fail("compare-select-shape")
        plan.cmp_update_block = update_block
        plan.kind = "cmp"
        # chaos draws inside a fork cannot be scheduled — require a guardless body
        if any(ch.gtype is not None or ch.gident is not None for ch in plan.invs) \
                or plan.acc_gtype is not None:
            return fail("guard-in-forked-body")
    elif acc_update is not None:
        if plan.acc_phi is None or _phi_input(plan.acc_phi, latch) is not acc_update:
            return fail("reduction-shape")
        if plan.kind == "gsum":
            if plan.acc_gtype is None or plan.acc_gtype.kind.name not in ("DBL", "INT"):
                return fail("reduction-shape")
        elif plan.kind in ("sum", "prod"):
            if plan.acc_gtype is not None:
                return fail("reduction-shape")
        elif plan.kind == "fsum":
            if plan.acc_gtype is not None:
                return fail("reduction-shape")
            if not _classify_addressing(plan, fail):
                return False
        else:
            return fail("reduction-shape")
        if plan.kind != "fsum" and plan.gather_keys:
            return fail("gather-index")
    else:
        return fail("no-reduction")

    # no loop-defined value may be used outside the loop (the kernel only
    # reconstructs registers that the retained scalar loop re-derives)
    loop_blocks = {header.id} | {bb.id for bb in plan.body_blocks}
    header_phis = set(id(p) for p in header.phis())
    for bb in plan.body_blocks:
        for ins in bb.instrs:
            for user in uses.get(ins, []):
                if user.block is not None and user.block.id not in loop_blocks:
                    return fail("value-escapes-loop")
    for phi in header.phis():
        pass  # header phi registers are written by the kernel; uses anywhere are fine

    # every framestate value referenced inside the loop must be role-mapped
    # or loop-invariant (checked again with registers at lowering)
    for bb in plan.body_blocks:
        for ins in bb.instrs:
            fs = getattr(ins, "framestate", None)
            if fs is None:
                continue
            for v in fs.iter_values():
                # in-loop Consts are preloaded registers — always correct
                if in_loop(v) and id(v) not in plan.roles and not isinstance(v, I.Const):
                    return fail("unmapped-framestate")
    return True
