"""repro — a reproduction of "Deoptless: Speculation with Dispatched
On-Stack Replacement and Specialized Continuations" (PLDI 2022).

The package implements a complete two-tier VM for mini-R (an R subset):

* a profiling bytecode interpreter (:mod:`repro.bytecode`),
* a speculative optimizing compiler with Assume/FrameState metadata
  (:mod:`repro.ir`, :mod:`repro.opt`) lowered to a register machine
  (:mod:`repro.native`),
* OSR-out (deoptimization) and OSR-in (:mod:`repro.osr`), and
* **deoptless** — dispatched OSR with specialized continuations
  (:mod:`repro.deoptless`), the paper's contribution.

Quickstart::

    from repro import RVM, Config
    vm = RVM(Config(enable_deoptless=True))
    vm.eval("f <- function(x) x + 1")
    print(vm.eval("f(41)"))
"""

from .api import from_r, to_r
from .jit.config import Config, CostModel
from .jit.vm import RVM
from .runtime.values import NULL, RError, RVector

__version__ = "1.0.0"

__all__ = [
    "Config",
    "CostModel",
    "NULL",
    "RError",
    "RVM",
    "RVector",
    "from_r",
    "to_r",
    "__version__",
]
