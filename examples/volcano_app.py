"""The volcano ray-tracing "shiny app" session (paper Figures 7-8).

    python examples/volcano_app.py

Replays a recorded user session — moving the sun, switching interpolation
functions, changing render options — over the mini-R ray tracer, printing
an ASCII rendering of each frame plus the frame time under deoptless.
"""

import time

from repro import Config, RVM, from_r
from repro.bench.figures import VOLCANO_SESSION
from repro.bench.programs.volcano import VOLCANO_SOURCE

SIZE = 28


def ascii_frame(img, hm, w, h) -> str:
    """Shade characters by light and elevation, like the paper's Figure 7."""
    ramp = " .:-=+*#%@"
    lines = []
    for y in range(h):
        row = []
        for x in range(w):
            i = y * w + x
            lit = img[i]
            elev = hm[i]
            level = int(max(0.0, min(9.0, (elev - 20.0) / 18.0)))
            ch = ramp[level] if lit > 0.5 else " "
            row.append(ch)
        lines.append("".join(row))
    return "\n".join(lines)


def main() -> None:
    vm = RVM(Config(enable_deoptless=True))
    vm.eval(VOLCANO_SOURCE)
    vm.eval("vw <- %dL\nvh <- %dL\nhm_dbl <- volcano_heightmap(vw, vh)" % (SIZE, SIZE))
    vm.eval("sunx <- 1.0; suny <- 0.6; cur_interp <- interp_bilinear; cur_scale <- 1.0")
    hm = from_r(vm.eval("hm_dbl"))

    for step, (desc, setup, frames) in enumerate(VOLCANO_SESSION):
        if setup:
            vm.eval(setup)
        for f in range(frames):
            t0 = time.perf_counter()
            vm.eval("img <- trace_rays(hm_dbl, vw, vh, sunx, suny, 0.35, cur_interp)")
            vm.eval("buckets <- render_image(img, hm_dbl, vw, vh, cur_scale)")
            dt = time.perf_counter() - t0
            if f == frames - 1:  # show the settled frame per interaction
                img = from_r(vm.eval("img"))
                print("\n== %s  (frame time %.1fms, deopts so far: %d, "
                      "deoptless dispatches: %d)" % (
                          desc, dt * 1e3, vm.state.deopts,
                          vm.state.deoptless_dispatches))
                print(ascii_frame(img, hm, SIZE, SIZE))

    snap = vm.state.snapshot()
    print("\nsession totals:", {k: snap[k] for k in (
        "compiles", "deopts", "deoptless_compiles", "deoptless_dispatches")})


if __name__ == "__main__":
    main()
