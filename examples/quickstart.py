"""Quickstart: run mini-R code on the deoptless VM.

    python examples/quickstart.py

Builds a VM, defines and calls R functions, moves values across the
Python/R boundary, and peeks at the JIT telemetry.
"""

from repro import Config, RVM, from_r, to_r


def main() -> None:
    # a VM with the optimizing JIT and deoptless enabled
    vm = RVM(Config(enable_deoptless=True))

    # define and call functions -------------------------------------------------
    vm.eval("""
fib <- function(n) if (n < 2L) n else fib(n - 1L) + fib(n - 2L)
""")
    print("fib(20L) =", from_r(vm.eval("fib(20L)")))

    # vectors, loops, subscripts -------------------------------------------------
    vm.eval("""
normalize <- function(v) {
  n <- length(v)
  total <- 0
  for (i in 1:n) total <- total + v[[i]]
  out <- numeric(n)
  for (i in 1:n) out[[i]] <- v[[i]] / total
  out
}
""")
    data = to_r([2.0, 3.0, 5.0])
    print("normalize(c(2,3,5)) =", from_r(vm.call("normalize", data)))

    # the function warms up in the interpreter, then tiers up --------------------
    vm.eval("x <- numeric(1000)\nfor (i in 1:1000) x[[i]] <- i * 0.5")
    for _ in range(4):
        vm.eval("normalize(x)")
    snap = vm.state.snapshot()
    print("\nafter warmup: %d native compilations, %d interpreter ops, "
          "%d native ops" % (snap["compiles"], snap["interp_ops"], snap["native_ops"]))

    # a type change triggers speculation machinery -------------------------------
    vm.eval("xi <- integer(1000)\nfor (i in 1:1000) xi[[i]] <- i")
    vm.eval("normalize(xi)")
    snap = vm.state.snapshot()
    print("after an integer vector showed up: %d deopts, "
          "%d deoptless dispatches (the float code was NOT thrown away)"
          % (snap["deopts"], snap["deoptless_dispatches"]))

    # captured program output ----------------------------------------------------
    vm.eval('cat("hello from mini-R\\n")')
    print("R said:", vm.output[-1].strip())


if __name__ == "__main__":
    main()
