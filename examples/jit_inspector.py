"""Inspect a function across all compilation tiers.

    python examples/jit_inspector.py

Shows, for the paper's sum function: the bytecode the baseline interpreter
runs, the collected type feedback, the speculative IR (with Assume guards
and FrameStates), the lowered register code, and the deoptless dispatch
table after a phase change.
"""

from repro import Config, RVM
from repro.bytecode.opcodes import disassemble as bc_disassemble
from repro.ir.builder import GraphBuilder
from repro.ir.cfg import print_graph
from repro.native.ops import disassemble as native_disassemble

SRC = """
sumfn <- function(data, len) {
  total <- 0
  for (i in 1:len) total <- total + data[[i]]
  total
}
"""


def main() -> None:
    vm = RVM(Config(enable_deoptless=True, compile_threshold=3))
    vm.eval(SRC)
    clo = vm.global_env.get("sumfn")

    print("=" * 70)
    print("1. BYTECODE (the profiling baseline tier)")
    print("=" * 70)
    print(bc_disassemble(clo.code))

    # warm up on doubles so the profile has something to say
    vm.eval("x <- c(1.5, 2.5, 3.5)")
    for _ in range(6):
        vm.eval("sumfn(x, 3L)")

    print()
    print("=" * 70)
    print("2. TYPE FEEDBACK (collected by the interpreter)")
    print("=" * 70)
    for pc in sorted(clo.code.feedback):
        print("  pc %3d: %r" % (pc, clo.code.feedback[pc]))

    print()
    print("=" * 70)
    print("3. SPECULATIVE IR (Assume guards reference FrameStates)")
    print("=" * 70)
    graph = GraphBuilder(vm, clo.code, clo).build()
    print(print_graph(graph))

    print()
    print("=" * 70)
    print("4. NATIVE REGISTER CODE (the optimized tier)")
    print("=" * 70)
    print(native_disassemble(clo.jit.version))

    # provoke a deoptless dispatch
    vm.eval("xi <- c(1L, 2L, 3L)")
    vm.eval("sumfn(xi, 3L)")
    print()
    print("=" * 70)
    print("5. DEOPTLESS DISPATCH TABLE after the int phase change")
    print("=" * 70)
    for ctx, ncode in clo.jit.deoptless_table.entries:
        print("  %r\n    -> %r" % (ctx, ncode))

    print()
    print("=" * 70)
    print("6. EVENT LOG")
    print("=" * 70)
    for e in vm.state.events:
        details = {k: v for k, v in e.details.items()}
        print("  %-20s %-10s %s" % (e.kind, e.fn_name, details))


if __name__ == "__main__":
    main()
