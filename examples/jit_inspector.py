"""Inspect a function across all compilation tiers.

    python examples/jit_inspector.py

Shows, for the paper's sum function: the bytecode the baseline interpreter
runs, the collected type feedback, the speculative IR (with Assume guards
and FrameStates), the lowered register code, and the deoptless dispatch
table after a phase change.

Then, for a call-heavy driver: the speculative inline tree, the nested
FrameState chains its compiled code carries for checkpoints inside inlined
bodies, and an end-to-end deopt-through-inlinee trace (the free variable
``k`` changes type, failing a guard three frames deep; deoptless compiles
a continuation for the chained state and the outer frames resume).
"""

from repro import Config, RVM
from repro.bytecode.opcodes import disassemble as bc_disassemble
from repro.ir.builder import GraphBuilder
from repro.ir.cfg import print_graph
from repro.native.ops import disassemble as native_disassemble

SRC = """
sumfn <- function(data, len) {
  total <- 0
  for (i in 1:len) total <- total + data[[i]]
  total
}
"""


def main() -> None:
    vm = RVM(Config(enable_deoptless=True, compile_threshold=3))
    vm.eval(SRC)
    clo = vm.global_env.get("sumfn")

    print("=" * 70)
    print("1. BYTECODE (the profiling baseline tier)")
    print("=" * 70)
    print(bc_disassemble(clo.code))

    # warm up on doubles so the profile has something to say
    vm.eval("x <- c(1.5, 2.5, 3.5)")
    for _ in range(6):
        vm.eval("sumfn(x, 3L)")

    print()
    print("=" * 70)
    print("2. TYPE FEEDBACK (collected by the interpreter)")
    print("=" * 70)
    for pc in sorted(clo.code.feedback):
        print("  pc %3d: %r" % (pc, clo.code.feedback[pc]))

    print()
    print("=" * 70)
    print("3. SPECULATIVE IR (Assume guards reference FrameStates)")
    print("=" * 70)
    graph = GraphBuilder(vm, clo.code, clo).build()
    print(print_graph(graph))

    print()
    print("=" * 70)
    print("4. NATIVE REGISTER CODE (the optimized tier)")
    print("=" * 70)
    print(native_disassemble(clo.jit.version))

    # provoke a deoptless dispatch
    vm.eval("xi <- c(1L, 2L, 3L)")
    vm.eval("sumfn(xi, 3L)")
    print()
    print("=" * 70)
    print("5. DEOPTLESS DISPATCH TABLE after the int phase change")
    print("=" * 70)
    for ctx, ncode in clo.jit.deoptless_table.entries:
        print("  %r\n    -> %r" % (ctx, ncode))

    print()
    print("=" * 70)
    print("6. EVENT LOG")
    print("=" * 70)
    for e in vm.state.events:
        details = {k: v for k, v in e.details.items()}
        print("  %-20s %-10s %s" % (e.kind, e.fn_name, details))

    inspect_inlining()
    inspect_code_cache()
    inspect_context_dispatch()
    inspect_vectorizer_declines()
    inspect_vectorizer_plans()
    inspect_escape_verdicts()
    inspect_osr_hops()
    inspect_fleet()


#: ``inc`` reads the free variable ``k`` from its lexical environment, so
#: its inlined copies keep a type guard the optimizer cannot fold away —
#: the checkpoint that makes the nested FrameState chains observable
INLINE_SRC = """
k <- 1
inc <- function(x) x + k
twice <- function(x) {
  a <- inc(x)
  inc(a)
}
driver <- function(n) {
  s <- 0
  i <- 0
  while (i < n) {
    s <- s + twice(i)
    i <- i + 1
  }
  s
}
"""


def _chain_str(descr) -> str:
    parts = []
    while descr is not None:
        fun = " (%s)" % descr.fun.name if descr.fun is not None else ""
        parts.append("%s@pc%d%s" % (descr.code.name, descr.pc, fun))
        descr = descr.parent
    return " -> ".join(parts)


def inspect_inlining() -> None:
    vm = RVM(Config(enable_deoptless=True, compile_threshold=3))
    vm.eval(INLINE_SRC)
    for _ in range(6):
        vm.eval("driver(40)")
    clo = vm.global_env.get("driver")

    print()
    print("=" * 70)
    print("7. SPECULATIVE INLINE TREE (for the compiled driver)")
    print("=" * 70)
    print("  driver")
    for e in vm.state.events_of("inline"):
        if e.fn_name != "driver":
            continue
        print("  %s%s  (call pc %d, %d bytecode ops)"
              % ("    " * e.details["depth"], e.details["callee"],
                 e.details["pc"], e.details["size"]))

    print()
    print("=" * 70)
    print("8. NESTED FRAMESTATE CHAINS (innermost frame first)")
    print("=" * 70)
    seen = set()
    for d in clo.jit.version.deopts:
        if d.parent is None:
            continue
        s = _chain_str(d)
        if s not in seen:
            seen.add(s)
            print("  " + s)

    print()
    print("=" * 70)
    print("9. DEOPT THROUGH AN INLINED FRAME (k becomes an int)")
    print("=" * 70)
    vm.eval("k <- 2L")
    r = vm.eval("driver(5)")
    print("  driver(5) =", r, " (exact: every frame of the chain resumed)")
    for e in vm.state.events:
        if e.kind in ("deopt", "deoptless_compile", "deoptless_dispatch"):
            details = {k: v for k, v in e.details.items()}
            print("  %-20s %-10s %s" % (e.kind, e.fn_name, details))
    inc_clo = vm.global_env.get("inc")
    if inc_clo.jit.deoptless_table is not None:
        print("  inc's dispatch table:")
        for ctx, ncode in inc_clo.jit.deoptless_table.entries:
            print("    %r\n      -> %r" % (ctx, ncode))


def inspect_code_cache() -> None:
    """The context-keyed code cache and the background tier-up queue."""
    vm = RVM(Config(enable_deoptless=True, compile_threshold=3,
                    codecache=True, tierup_mode="step"))
    vm.eval(SRC)
    vm.eval(SRC.replace("sumfn", "sumfn2"))  # identical body, new name
    vm.eval("x <- c(1.5, 2.5, 3.5)")
    vm.eval("xi <- c(1L, 2L, 3L)")

    print()
    print("=" * 70)
    print("10. TIER-UP QUEUE (step mode: enqueue at the call site, drain on demand)")
    print("=" * 70)
    for _ in range(6):
        vm.eval("sumfn(x, 3L)")
    q = vm.compile_queue
    print("  mode=%s  pending=%d  enqueues=%d  installs=%d"
          % (q.mode, len(q.pending), vm.state.tierup_enqueues,
             vm.state.tierup_installs))
    n = vm.drain_compile_queue()
    print("  drained %d request(s): installs=%d compiles=%d"
          % (n, vm.state.tierup_installs, vm.state.compiles))

    print()
    print("=" * 70)
    print("11. CODE CACHE (sumfn2 shares sumfn's unit; a phase change adds a cont)")
    print("=" * 70)
    for _ in range(6):
        vm.eval("sumfn2(x, 3L)")
    vm.drain_compile_queue()
    vm.eval("sumfn(xi, 3L)")   # deoptless continuation, cached
    vm.eval("sumfn2(xi, 3L)")  # same context in the sibling: served from cache
    print(vm.code_cache.describe())
    print("  hits=%d stable_hits=%d misses=%d  compiles=%d (sumfn2 paid zero)"
          % (vm.state.codecache_hits, vm.state.codecache_stable_hits,
             vm.state.codecache_misses, vm.state.compiles))
    for e in vm.state.events_of("codecache_hit"):
        details = {k: v for k, v in e.details.items()}
        print("  %-20s %-10s %s" % (e.kind, e.fn_name, details))


#: a driver so the CALL site's argument-kind profiles are observable in a
#: closure's persistent feedback (top-level code objects are transient)
CTX_SRC = SRC + """
ctxdriver <- function(v, n, m) {
  s <- 0
  j <- 0
  while (j < m) {
    s <- s + sumfn(v, n)
    j <- j + 1
  }
  s
}
"""


def inspect_context_dispatch() -> None:
    """The entry version tables: one compiled version per call context."""
    vm = RVM(Config(compile_threshold=3, ctxdispatch=True,
                    dispatch_versions=2, dispatch_evict=False))
    vm.eval(CTX_SRC)
    vm.eval("xi <- c(1L, 2L, 3L)")
    vm.eval("xd <- c(1.5, 2.5, 3.5)")
    vm.eval("xl <- c(TRUE, FALSE, TRUE)")
    # sumfn is entry-polymorphic: three argument contexts hit the same call
    # boundary.  dbl runs first so the int context cannot ride on a wider
    # dbl version (int <= dbl) and compiles its own; the lgl calls then
    # dispatch into the int version (lgl <= int in the context order)
    for _ in range(6):
        vm.eval("ctxdriver(xd, 3L, 4L)")
        vm.eval("ctxdriver(xi, 3L, 4L)")
        vm.eval("ctxdriver(xl, 3L, 4L)")

    print()
    print("=" * 70)
    print("12. ENTRY VERSION TABLE (one compiled version per call context)")
    print("=" * 70)
    clo = vm.global_env.get("sumfn")
    st = clo.jit
    driver = vm.global_env.get("ctxdriver")
    fb = next((s for s in driver.code.feedback.values()
               if getattr(s, "arg_profiles", None)), None)
    if fb is not None:
        print("  ctxdriver's call-site arg-kind profiles: %s"
              % ", ".join("(%s)" % ", ".join(k.name for k in p)
                          for p in fb.arg_profiles))
    if st.versions is None:
        print("  (no versions)")
        return
    print("  versions (scanned most-specific first, generic falls through):")
    for e in st.versions.iter_entries():
        print("    spec=%2d hits=%4d %r\n      -> %r"
              % (e.spec, e.hits, e.ctx, e.code))
    print("  ctx_compiles=%d ctx_dispatches=%d ctx_pic_hits=%d"
          % (vm.state.ctx_compiles, vm.state.ctx_dispatches,
             vm.state.ctx_pic_hits))
    print("  table evictions=%d refusals=%d (dispatch_versions=%d, evict=%s)"
          % (vm.state.dispatch_evictions, vm.state.dispatch_refusals,
             vm.config.dispatch_versions, vm.config.dispatch_evict))
    for e in vm.state.events_of("ctx_compile"):
        details = {k: v for k, v in e.details.items()}
        print("  %-20s %-10s %s" % (e.kind, e.fn_name, details))


#: spectralnorm in miniature: the hot loop calls a closure per element.
#: After inlining, the fused ``s + av(v[[i]])`` expression is a map→reduce
#: the vectorizer recognizes, so ``dot`` now kernelizes instead of being
#: refused.  ``cond`` keeps the decline panel honest: branching inside the
#: body still declines, and the log says why instead of silently reporting
#: ``kernel_elements: 0``
VEC_SRC = """
av <- function(x) x / 2
dot <- function(v, n) {
  s <- 0
  for (i in 1:n) s <- s + av(v[[i]])
  s
}
plain <- function(v, n) {
  s <- 0
  for (i in 1:n) s <- s + v[[i]]
  s
}
cond <- function(v, n) {
  s <- 0
  for (i in 1:n) if (i < 100) s <- s + v[[i]]
  s
}
"""


def inspect_vectorizer_declines() -> None:
    """Why hot loops were (not) kernelized."""
    vm = RVM(Config(compile_threshold=3, vectorize=True))
    vm.eval(VEC_SRC)
    vm.eval("x <- 1.5 * (1:32)")
    for _ in range(6):
        vm.eval("dot(x, 32L)")
        vm.eval("plain(x, 32L)")
        vm.eval("cond(x, 32L)")

    print()
    print("=" * 70)
    print("13. VECTORIZER DECLINES (why a loop was not kernelized)")
    print("=" * 70)
    print("  kernel_elements=%d  vec_declines=%d"
          % (vm.state.kernel_elements, vm.state.vec_declines))
    print("  declines by reason:")
    for reason, count in sorted(vm.state.vec_decline_reasons.items()):
        print("    %-28s %d" % (reason, count))
    print("  decline log (fn, bytecode pc, reason, times seen):")
    for fn, pc, reason, count in vm.state.vec_decline_log:
        print("    %-12s pc %3d  %-24s x%d" % (fn, pc, reason, count))


#: a loop nest (inner counted reduction under a scalar outer driver) plus a
#: gather (``v[[idx[[i]]]]``) — the two addressing shapes the nest planner
#: reports beside plain unit-stride reads
NEST_SRC = """
nest <- function(v, n, m) {
  total <- 0
  for (o in 1:m) {
    s <- 0
    for (i in 1:n) s <- s + v[[i]] * o
    total <- total + s
  }
  total
}
gsum <- function(v, idx, n) {
  s <- 0
  for (i in 1:n) s <- s + v[[idx[[i]]]]
  s
}
"""


def inspect_vectorizer_plans() -> None:
    """The nest planner: which loops became kernels, and how they address."""
    vm = RVM(Config(compile_threshold=3, vectorize=True))
    vm.eval(NEST_SRC)
    vm.eval("x <- 1.5 * (1:32)")
    vm.eval("idx <- rep(1:16, 2)")
    for _ in range(6):
        vm.eval("nest(x, 32L, 8L)")
        vm.eval("gsum(x, idx, 32L)")

    print()
    print("=" * 70)
    print("14. VECTORIZER NEST PLANS (loops that became kernels)")
    print("=" * 70)
    print("  kernel_elements=%d  plans=%d"
          % (vm.state.kernel_elements, len(vm.state.vec_plans)))
    print("  plan (fn, inner pc, kernel kind, addressing, outer driver pc):")
    for fn, pc, kind, addressing, outer_pc in vm.state.vec_plans:
        outer = "pc %3d" % outer_pc if outer_pc is not None else "(flat) "
        print("    %-8s pc %3d  %-10s %-8s outer %s"
              % (fn, pc, kind, addressing, outer))


#: one function per escape verdict: ``cnt`` captures its accumulator (mixed
#: — ``total`` is demoted to the partial MkEnv, the loop state stays
#: scalar), ``lzsum`` routes its argument through a lazily-evaluated
#: closure call whose promise the analysis elides (scalar), ``dflt`` has a
#: non-constant default argument, which declines the analysis (env), and
#: ``coldcap`` hides its only capture on a cold branch — cut away under an
#: Assume(env-not-captured) guard, so the frame still goes fully scalar
ESCAPE_SRC = """
cnt <- function(n) {
  total <- 0
  bump <- function(k) total <<- total + k
  i <- 0
  while (i < n) {
    bump(1L)
    i <- i + 1
  }
  total
}
lz_add1 <- function(x) x + 1
lz_use <- function(v) v * 2
lzsum <- function(n) {
  s <- 0
  i <- 0
  while (i < n) {
    s <- s + lz_use(lz_add1(i))
    i <- i + 1
  }
  s
}
dflt <- function(n, k = n + 1L) {
  s <- 0
  i <- 0
  while (i < n) {
    s <- s + k
    i <- i + 1
  }
  s
}
coldcap <- function(n, t) {
  s <- 0
  i <- 0
  while (i < n) {
    if (i > t) f <- function() s
    s <- s + i
    i <- i + 1
  }
  s
}
"""


def inspect_escape_verdicts() -> None:
    """Per-function escape verdicts: what was scalar-replaced, what was
    demoted into the partial environment (and why), what declined."""
    vm = RVM(Config(compile_threshold=3, escape=True))
    vm.eval(ESCAPE_SRC)
    for _ in range(6):
        vm.eval("cnt(40)")
        vm.eval("lzsum(40)")
        vm.eval("dflt(40L)")
        # the capture in coldcap sits on a never-taken branch: it is cut
        # away under an Assume(env-not-captured) guard instead of forcing
        # an environment
        vm.eval("coldcap(40, 1000)")

    print()
    print("=" * 70)
    print("15. ESCAPE VERDICTS (scalar replacement & promise elision)")
    print("=" * 70)
    print("  env_elided=%d promise_elided=%d escape_guards=%d env_remat=%d"
          % (vm.state.env_elided, vm.state.promise_elided,
             vm.state.escape_guards, vm.state.env_remat))
    print("  verdict log (fn, verdict, demoted names / blocking reason, times):")
    for fn, verdict, detail, count in vm.state.escape_log:
        print("    %-8s %-7s %-44s x%d" % (fn, verdict, detail or "-", count))


#: the fig6-style phase flip: the loop body calls a global helper closure,
#: so its speculatively-inlined identity guard executes every iteration and
#: chaos mode can fail an assumption *inside* a deoptless continuation —
#: continuations may not recurse, so that is exactly where the hop
#: machinery takes over and re-enters a surviving compiled version at the
#: loop header instead of interpreting the rest of the activation
HOP_SRC = """
hop_step <- function(v, k) v + k
hop_flip <- function(a, b, n) {
  s <- 0
  x <- a
  h <- n %/% 2L
  i <- 1L
  while (i <= n) {
    if (i == h) x <- b
    s <- s + hop_step(x[[i]], 1L)
    i <- i + 1L
  }
  s
}
"""


def inspect_osr_hops() -> None:
    """Dispatched OSR: the per-pc entry maps a compiled version exposes,
    the version hops taken through them, and continuation tier-up."""
    vm = RVM(Config(compile_threshold=1, enable_deoptless=True,
                    ctxdispatch=False, osr_hop=True,
                    chaos_rate=2e-3, chaos_seed=42))
    vm.eval(HOP_SRC)
    vm.eval("hn <- 2000L")
    vm.eval("hai <- integer(hn)")
    vm.eval("for (i in 1:hn) hai[[i]] <- i")
    vm.eval("hbr <- numeric(hn)")
    vm.eval("for (i in 1:hn) hbr[[i]] <- i * 1.0")
    for _ in range(3):
        vm.eval("hop_flip(hai, hai, hn)")  # monomorphic int warmup
    for _ in range(8):
        vm.eval("hop_flip(hai, hbr, hn)")  # flips int -> double mid-loop

    print()
    print("=" * 70)
    print("16. DISPATCHED OSR (version hops & continuation tier-up)")
    print("=" * 70)
    clo = vm.global_env.get("hop_flip")
    print("  OSR entry map of the generic version (pc -> seedable slots):")
    for pc, entry in sorted(clo.jit.version.osr_entries.items()):
        slots = ", ".join(
            "%s:r%d%s" % (name, reg, ":" + kind.name if kind else "")
            for name, reg, kind, _rtype in entry.var_slots)
        print("    pc %3d -> op %3d  [%s]" % (pc, entry.index, slots))
    print("  osr_hops=%d cont_tierups=%d declines=%d"
          % (vm.state.osr_hops, vm.state.cont_tierups,
             vm.state.osr_hop_declines))
    print("  hop trajectories (per closure; via deopt = mid-loop exit hop,"
          " via osr_in = hot-interpreter re-entry):")
    traj = {}
    for e in vm.state.events_of("osr_hop"):
        traj.setdefault(e.fn_name, []).append(
            "pc%d:%s->%s" % (e.details["pc"], e.details["via"],
                             e.details["target"]))
    for fn, hops in sorted(traj.items()):
        shown = "  ".join(hops[:5])
        if len(hops) > 5:
            shown += "  ... (%d hops total)" % len(hops)
        print("    %-10s %s" % (fn, shown))
    for e in vm.state.events_of("cont_tierup"):
        print("  tier-up: %-10s promoted to an entry version "
              "(size=%d, specificity=%d)"
              % (e.fn_name, e.details["size"], e.details["specificity"]))
    if vm.state.osr_hop_decline_log:
        print("  decline log (fn, bytecode pc, reason, times seen):")
        for fn, pc, reason, count in vm.state.osr_hop_decline_log:
            print("    %-12s pc %3d  %-24s x%d" % (fn, pc, reason, count))


def inspect_fleet() -> None:
    """Multi-tenant serving: the shared code cache between sessions, who
    published what, and what each tenant actually paid the pipeline for."""
    from repro.serve import Server

    srv = Server(config_factory=lambda: Config(
        enable_deoptless=True, compile_threshold=2, codecache=True,
        serve=True))
    # three tenants run the same workload; only the first compiles it
    for tenant in ("alice", "bob", "carol"):
        srv.eval(tenant, SRC)
        srv.eval(tenant, "x <- c(1.5, 2.5, 3.5)")
        srv.eval(tenant, "xi <- c(1L, 2L, 3L)")
        for _ in range(4):
            srv.eval(tenant, "sumfn(x, 3L)")
        srv.eval(tenant, "sumfn(xi, 3L)")  # phase flip -> shared continuation

    print()
    print("=" * 70)
    print("17. FLEET VIEW (one shared code cache behind three sessions)")
    print("=" * 70)
    st = srv.stats()
    sc = st["shared_cache"]
    print("  shared cache: %d entries, hits=%d (cross-tenant %d), puts=%d,"
          " evictions=%d" % (len(srv.shared), sc["hits"],
                             sc["cross_tenant_hits"], sc["puts"],
                             sc["evictions"]))
    print("  per tenant (compiled = parity-accounted; lowered = pipeline"
          " actually ran):")
    print("    %-8s %9s %9s %9s %9s" % ("tenant", "requests", "compiled",
                                        "lowered", "rebinds"))
    for tenant in sorted(st["per_tenant"]):
        t = st["per_tenant"][tenant]
        print("    %-8s %9d %9d %9d %9d"
              % (tenant, t["serve_requests"], t["compiled_instrs"],
                 t["lowered_instrs"], t["shared_rebinds"]))
    print("  fleet: lowered %d of %d compiled instrs (%.0f%% of the"
          " pipeline work skipped)"
          % (st["lowered_instrs"], st["compiled_instrs"],
             100.0 * (1 - st["lowered_instrs"] / st["compiled_instrs"])))
    print("  publishers by digest:")
    by_tenant = {}
    for entry in srv.shared.entries.values():
        by_tenant[entry.origin] = by_tenant.get(entry.origin, 0) + 1
    for tenant, count in sorted(by_tenant.items()):
        print("    %-8s published %d stable form(s)" % (tenant, count))
    srv.close()


if __name__ == "__main__":
    main()
