"""Multi-tenant serving, narrated.

    python examples/serve_demo.py

One :class:`repro.serve.Server` hosts several tenants running the same
hot function.  The first tenant pays the compile pauses and publishes the
stable forms into the fleet's shared code cache; every tenant that joins
afterwards rebinds those forms instead of re-running the pipeline, so its
cold start is mostly execution.  A final chaos-injected tenant shows the
isolation half of the design: its speculation failures retire only its
own installed versions — the other tenants' dispatch behaviour is
bit-identical to what an isolated VM would have done.

The same script run with ``RERPO_SERVE=0`` degrades the server to fully
isolated per-tenant VMs (the benchmark baseline): every tenant then pays
its own compiles.
"""

import time

from repro import Config
from repro.serve import Server

SRC = """
score <- function(data, len) {
  total <- 0
  for (i in 1:len) total <- total + data[[i]]
  total / len
}
"""

N = 300
SETUP = ("xs <- numeric(%d)\nfor (i in 1:%d) xs[[i]] <- i * 1.5" % (N, N),
         "n <- %dL" % N)
FLIP = "ys <- integer(%d)\nfor (i in 1:%d) ys[[i]] <- i" % (N, N)


def warm_tenant(srv: Server, tenant: str, config: Config = None) -> float:
    """Run one tenant's cold start; returns its wall-clock seconds."""
    if config is not None:
        srv.session(tenant, config=config)
    t0 = time.perf_counter()
    srv.eval(tenant, SRC)
    for stmt in SETUP:
        srv.eval(tenant, stmt)
    for _ in range(4):
        srv.eval(tenant, "score(xs, n)")
    srv.eval(tenant, FLIP)
    srv.eval(tenant, "score(ys, n)")  # phase flip -> deoptless continuation
    return time.perf_counter() - t0


def main() -> None:
    cfg = lambda: Config(enable_deoptless=True, compile_threshold=2,
                         codecache=True)
    with Server(config_factory=cfg) as srv:
        mode = "shared fleet" if srv.serve_enabled else \
            "isolated VMs (RERPO_SERVE=0)"
        print("serving mode: %s" % mode)
        print()
        print("%-10s %10s %12s %12s %9s" % (
            "tenant", "cold (ms)", "compiled", "lowered", "rebinds"))
        for tenant in ("alice", "bob", "carol", "dave"):
            secs = warm_tenant(srv, tenant)
            snap = srv.sessions[tenant].vm.state.snapshot()
            print("%-10s %10.1f %12d %12d %9d" % (
                tenant, secs * 1e3, snap["compiled_instrs"],
                snap["lowered_instrs"], snap["shared_rebinds"]))

        # a misbehaving tenant: chaos-injected speculation failures.  Its
        # deopts retire its own versions only; nothing it does shows up in
        # the other tenants' engine counters.
        warm_tenant(srv, "mallory",
                    config=Config(enable_deoptless=True, compile_threshold=2,
                                  codecache=True, chaos_rate=0.2,
                                  chaos_seed=7))
        chaos = srv.sessions["mallory"].vm.state.snapshot()
        print("%-10s %10s %12d %12d %9d   (chaos: %d deopts, kept to itself)"
              % ("mallory", "-", chaos["compiled_instrs"],
                 chaos["lowered_instrs"], chaos["shared_rebinds"],
                 chaos["deopts"]))

        st = srv.stats()
        print()
        if srv.serve_enabled:
            sc = st["shared_cache"]
            print("shared cache: %d entries, %d hits (%d cross-tenant), "
                  "%d invalidations" % (len(srv.shared), sc["hits"],
                                        sc["cross_tenant_hits"],
                                        sc["invalidations"]))
        print("fleet pipeline work: lowered %d of %d compiled instrs"
              % (st["lowered_instrs"], st["compiled_instrs"]))
        print("request latency: p50 %.2f ms / p99 %.2f ms over %d requests"
              % (st["latency"]["p50_ms"], st["latency"]["p99_ms"],
                 st["requests"]))


if __name__ == "__main__":
    main()
