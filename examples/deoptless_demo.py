"""The paper's running example, narrated (Listing 1 + Figure 4).

    python examples/deoptless_demo.py

Runs the naive vector sum over four phases — integer, float, complex, float
— side by side under normal deoptimization and under deoptless, printing
per-iteration times and the VM events that explain them.
"""

import time

from repro import Config, RVM, from_r

SUM = """
sum <- function() {
  total <- 0
  for (i in 1:length) total <- total + data[[i]]
  total
}
"""

N = 4000

PHASES = [
    ("integer", "data <- integer(%d)\nfor (i in 1:%d) data[[i]] <- i" % (N, N)),
    ("float", "data <- numeric(%d)\nfor (i in 1:%d) data[[i]] <- i * 1.5" % (N, N)),
    ("complex", "data <- complex(%d)\nfor (i in 1:%d) data[[i]] <- complex(i * 1.0, 1.0)" % (N, N)),
    ("float again", "data <- numeric(%d)\nfor (i in 1:%d) data[[i]] <- i * 1.5" % (N, N)),
]


def run(deoptless: bool):
    vm = RVM(Config(enable_deoptless=deoptless))
    vm.eval(SUM)
    vm.eval("length <- %dL" % N)
    rows = []
    seen_events = 0
    for phase, setup in PHASES:
        vm.eval(setup)
        for it in range(5):
            t0 = time.perf_counter()
            vm.eval("sum()")
            dt = time.perf_counter() - t0
            new = vm.state.events[seen_events:]
            seen_events = len(vm.state.events)
            notes = ", ".join(
                e.kind for e in new
                if e.kind in ("compile", "deopt", "deoptless_compile",
                              "deoptless_dispatch", "osr_in")
            )
            rows.append((phase, it, dt, notes))
    return rows


def main() -> None:
    print("running WITHOUT deoptless (normal deoptimization, Figure 1)...")
    normal = run(False)
    print("running WITH deoptless (dispatched OSR, Figure 2)...")
    deoptless = run(True)

    print("\n%-12s %-3s | %11s %-34s | %11s %s" % (
        "phase", "it", "normal", "events", "deoptless", "events"))
    print("-" * 110)
    for (ph, it, tn, en), (_, _, td, ed) in zip(normal, deoptless):
        print("%-12s %-3d | %9.2fms %-34s | %9.2fms %s" % (
            ph, it, tn * 1e3, en[:34], td * 1e3, ed[:40]))

    n_final = min(t for p, i, t, _ in normal if p == "float again" and i > 0)
    d_final = min(t for p, i, t, _ in deoptless if p == "float again" and i > 0)
    print("\nfinal float phase: normal %.2fms vs deoptless %.2fms (%.1fx)"
          % (n_final * 1e3, d_final * 1e3, n_final / d_final))
    print("normal is stuck with the generic recompile; deoptless kept the "
          "specialized code and its float continuation.")


if __name__ == "__main__":
    main()
